package api

import (
	"encoding/json"
	"fmt"
	"time"

	"medshare/internal/identity"
	"medshare/internal/reldb"
	"medshare/internal/reldb/pmap"
)

// Wire DTOs for the serving edge. Addresses travel as hex strings,
// roots as hex digests, rows in reldb's typed JSON value encoding
// ({"k":kind,"v":payload}) so clients can re-hash them for proof
// verification without guessing types. Update payloads instead accept
// raw JSON scalars, coerced server-side against the view schema —
// human-writable requests, typed storage.

// RegisterRequest registers a new share with this peer as initiator.
type RegisterRequest struct {
	ID          string          `json:"id"`
	SourceTable string          `json:"sourceTable"`
	ViewName    string          `json:"viewName"`
	// LensSpec is a serialized bx.Spec (the same form stored on-chain).
	LensSpec json.RawMessage `json:"lensSpec,omitempty"`
	// Peers are all sharing peers' hex addresses, initiator included.
	Peers []string `json:"peers"`
	// WritePerm maps shared attributes to allowed writer addresses.
	WritePerm map[string][]string `json:"writePerm,omitempty"`
	// Authority optionally names the permission authority.
	Authority string `json:"authority,omitempty"`
}

// AttachRequest binds an already-registered share to this peer's local
// source.
type AttachRequest struct {
	ID          string          `json:"id"`
	SourceTable string          `json:"sourceTable"`
	ViewName    string          `json:"viewName"`
	LensSpec    json.RawMessage `json:"lensSpec,omitempty"`
}

// ShareStatus is one share's lifecycle state as served by GET
// /v1/shares/{id}: the local binding plus the on-chain metadata.
type ShareStatus struct {
	ID          string   `json:"id"`
	SourceTable string   `json:"sourceTable"`
	ViewName    string   `json:"viewName"`
	AppliedSeq  uint64   `json:"appliedSeq"`
	ChainSeq    uint64   `json:"chainSeq"`
	Pending     bool     `json:"pending"`
	Columns     []string `json:"columns,omitempty"`
	Peers       []string `json:"peers,omitempty"`
	// PayloadHash is the on-chain table hash of the most recently
	// finalized update (hex; empty before the first update). A
	// proof-carrying RowResult at ChainSeq must recompute to exactly
	// this hash — see VerifyRowPayload.
	PayloadHash string `json:"payloadHash,omitempty"`
}

// RowResult is a single-row read, optionally proof-carrying: Root and
// Proof are present iff the request asked for a proof, and verify via
// reldb.VerifyRowProof against the root the on-chain payload hash
// commits to at Seq. SchemaSum and Rows complete the table-hash
// preimage (sha256(schemaSum ‖ rowCount ‖ root)), so a verifier can
// bind the proven root to the payload hash the chain records at Seq.
type RowResult struct {
	ShareID   string      `json:"shareId"`
	Seq       uint64      `json:"seq"`
	Row       reldb.Row   `json:"row"`
	Root      string      `json:"root,omitempty"`
	Proof     *pmap.Proof `json:"proof,omitempty"`
	SchemaSum string      `json:"schemaSum,omitempty"`
	Rows      int         `json:"rows,omitempty"`
}

// RowOp is one entry-level mutation of the shared view.
type RowOp struct {
	// Op is "upsert" (Row = full row), "delete" (Key = key tuple), or
	// "set" (Key + Set = partial column update).
	Op  string `json:"op"`
	Row []any  `json:"row,omitempty"`
	Key []any  `json:"key,omitempty"`
	Set map[string]any `json:"set,omitempty"`
}

// UpdateRequest carries a batch of view mutations for one share. All
// ops apply atomically within one proposal; concurrent requests landing
// in the same coalescing window share one group commit.
type UpdateRequest struct {
	Ops []RowOp `json:"ops"`
}

// UpdateResult reports the proposal a view update rode on. NoChange is
// set when the ops were a no-op against the current view (nothing was
// proposed). Coalesced is how many API write requests shared this
// request's group commit (≥1).
type UpdateResult struct {
	ShareID   string   `json:"shareId"`
	Seq       uint64   `json:"seq,omitempty"`
	TxID      string   `json:"txId,omitempty"`
	Cols      []string `json:"cols,omitempty"`
	NoChange  bool     `json:"noChange,omitempty"`
	Coalesced int      `json:"coalesced"`
}

// AuditRecord is one on-chain audit-trail entry (audit.Record with
// addresses rendered for transport).
type AuditRecord struct {
	Height      uint64    `json:"height"`
	Time        time.Time `json:"time"`
	TxID        string    `json:"txId"`
	From        string    `json:"from"`
	Fn          string    `json:"fn"`
	ShareID     string    `json:"shareId"`
	OK          bool      `json:"ok"`
	Err         string    `json:"err,omitempty"`
	Seq         uint64    `json:"seq,omitempty"`
	Cols        []string  `json:"cols,omitempty"`
	PayloadHash string    `json:"payloadHash,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// parseAddrs converts hex addresses to identity addresses.
func parseAddrs(hexes []string) ([]identity.Address, error) {
	out := make([]identity.Address, 0, len(hexes))
	for _, h := range hexes {
		a, err := identity.ParseAddress(h)
		if err != nil {
			return nil, fmt.Errorf("bad address %q: %w", h, err)
		}
		out = append(out, a)
	}
	return out, nil
}

func addrStrings(addrs []identity.Address) []string {
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = a.String()
	}
	return out
}

// coerceValue converts a raw JSON scalar into a typed reldb value of
// the given kind. JSON numbers arrive as float64; ints must be
// integral, times are RFC 3339 strings.
func coerceValue(v any, k reldb.Kind) (reldb.Value, error) {
	if v == nil {
		return reldb.Null(), nil
	}
	switch k {
	case reldb.KindString:
		s, ok := v.(string)
		if !ok {
			return reldb.Value{}, fmt.Errorf("want string, got %T", v)
		}
		return reldb.S(s), nil
	case reldb.KindInt:
		f, ok := v.(float64)
		if !ok || f != float64(int64(f)) {
			return reldb.Value{}, fmt.Errorf("want integer, got %v", v)
		}
		return reldb.I(int64(f)), nil
	case reldb.KindFloat:
		f, ok := v.(float64)
		if !ok {
			return reldb.Value{}, fmt.Errorf("want number, got %T", v)
		}
		return reldb.F(f), nil
	case reldb.KindBool:
		b, ok := v.(bool)
		if !ok {
			return reldb.Value{}, fmt.Errorf("want bool, got %T", v)
		}
		return reldb.B(b), nil
	case reldb.KindTime:
		s, ok := v.(string)
		if !ok {
			return reldb.Value{}, fmt.Errorf("want RFC3339 time string, got %T", v)
		}
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return reldb.Value{}, err
		}
		return reldb.T(t), nil
	default:
		return reldb.Value{}, fmt.Errorf("unsupported kind %v", k)
	}
}

// coerceRow converts raw scalars to a typed row against the schema's
// column kinds (full-width rows, for upserts).
func coerceRow(vals []any, sch reldb.Schema) (reldb.Row, error) {
	if len(vals) != len(sch.Columns) {
		return nil, fmt.Errorf("row has %d values, schema %q has %d columns", len(vals), sch.Name, len(sch.Columns))
	}
	row := make(reldb.Row, len(vals))
	for i, v := range vals {
		cv, err := coerceValue(v, sch.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", sch.Columns[i].Name, err)
		}
		row[i] = cv
	}
	return row, nil
}

// coerceKey converts raw scalars to a typed key tuple against the
// schema's key column kinds.
func coerceKey(vals []any, sch reldb.Schema) (reldb.Row, error) {
	if len(vals) != len(sch.Key) {
		return nil, fmt.Errorf("key has %d values, schema %q keys on %d columns", len(vals), sch.Name, len(sch.Key))
	}
	key := make(reldb.Row, len(vals))
	for i, v := range vals {
		kind, err := keyKind(sch, sch.Key[i])
		if err != nil {
			return nil, err
		}
		cv, err := coerceValue(v, kind)
		if err != nil {
			return nil, fmt.Errorf("key column %s: %w", sch.Key[i], err)
		}
		key[i] = cv
	}
	return key, nil
}

func keyKind(sch reldb.Schema, col string) (reldb.Kind, error) {
	for _, c := range sch.Columns {
		if c.Name == col {
			return c.Type, nil
		}
	}
	return 0, fmt.Errorf("key column %s not in schema", col)
}
