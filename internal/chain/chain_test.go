package chain

import (
	"errors"
	"testing"

	"medshare/internal/identity"
	"medshare/internal/merkle"
)

func signedTx(t *testing.T, id *identity.Identity, shareID string, nonce uint64) *Tx {
	t.Helper()
	tx := &Tx{
		Contract: "sharereg",
		Fn:       "request_update",
		Args:     [][]byte{[]byte(`{"shareId":"` + shareID + `"}`)},
		ShareID:  shareID,
		Nonce:    nonce,
	}
	tx.Sign(id)
	return tx
}

func TestTxSignVerify(t *testing.T) {
	id := identity.MustNew("a")
	tx := signedTx(t, id, "s1", 1)
	if err := tx.Verify(); err != nil {
		t.Fatal(err)
	}
	if tx.From != id.Address() {
		t.Fatal("From not set by Sign")
	}
}

func TestTxVerifyRejectsUnsigned(t *testing.T) {
	tx := &Tx{Contract: "c", Fn: "f"}
	if err := tx.Verify(); !errors.Is(err, ErrTxUnsigned) {
		t.Fatalf("want ErrTxUnsigned, got %v", err)
	}
}

func TestTxVerifyRejectsTampering(t *testing.T) {
	id := identity.MustNew("a")
	tx := signedTx(t, id, "s1", 1)
	tx.Fn = "ack_update"
	if err := tx.Verify(); !errors.Is(err, ErrTxBadSig) {
		t.Fatalf("want ErrTxBadSig, got %v", err)
	}
}

func TestTxVerifyRejectsWrongSender(t *testing.T) {
	a, b := identity.MustNew("a"), identity.MustNew("b")
	tx := signedTx(t, a, "s1", 1)
	tx.From = b.Address()
	if err := tx.Verify(); !errors.Is(err, ErrTxBadSig) {
		t.Fatalf("want ErrTxBadSig, got %v", err)
	}
}

func TestTxIDUniqueness(t *testing.T) {
	id := identity.MustNew("a")
	t1 := signedTx(t, id, "s1", 1)
	t2 := signedTx(t, id, "s1", 2) // same content, different nonce
	if t1.ID() == t2.ID() {
		t.Fatal("nonce must differentiate tx IDs")
	}
	t3 := signedTx(t, id, "s1", 1)
	if t1.ID() != t3.ID() {
		t.Fatal("identical txs must share an ID")
	}
}

func TestSigHashCoversAllFields(t *testing.T) {
	id := identity.MustNew("a")
	base := signedTx(t, id, "s1", 1)
	mutations := []func(*Tx){
		func(x *Tx) { x.Contract = "other" },
		func(x *Tx) { x.Fn = "other" },
		func(x *Tx) { x.Args = [][]byte{[]byte("other")} },
		func(x *Tx) { x.ShareID = "other" },
		func(x *Tx) { x.Nonce = 99 },
		func(x *Tx) { x.TimestampMicro = 99 },
	}
	for i, mut := range mutations {
		x := *base
		mut(&x)
		if x.SigHash() == base.SigHash() {
			t.Errorf("mutation %d not covered by SigHash", i)
		}
	}
}

func buildBlock(t *testing.T, parent *Block, txs []*Tx, proposer *identity.Identity) *Block {
	t.Helper()
	b := &Block{
		Header: Header{
			Height:   parent.Header.Height + 1,
			PrevHash: parent.Hash(),
			Proposer: proposer.Address(),
		},
		Txs: txs,
	}
	b.Header.TxRoot = b.ComputeTxRoot()
	return b
}

func TestBlockVerifyStructure(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	b := buildBlock(t, g, []*Tx{signedTx(t, id, "s1", 1), signedTx(t, id, "s2", 2)}, id)
	if err := b.VerifyStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRejectsBadTxRoot(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	b := buildBlock(t, g, []*Tx{signedTx(t, id, "s1", 1)}, id)
	b.Header.TxRoot[0] ^= 1
	if err := b.VerifyStructure(); !errors.Is(err, ErrBadTxRoot) {
		t.Fatalf("want ErrBadTxRoot, got %v", err)
	}
}

func TestBlockRejectsShareConflict(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	// Two transactions on the same share in one block violate the
	// paper's rule (Section III-B).
	b := buildBlock(t, g, []*Tx{signedTx(t, id, "s1", 1), signedTx(t, id, "s1", 2)}, id)
	if err := b.VerifyStructure(); !errors.Is(err, ErrShareConflict) {
		t.Fatalf("want ErrShareConflict, got %v", err)
	}
}

func TestBlockAllowsEmptyShareIDs(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	t1 := &Tx{Contract: "c", Fn: "f", Nonce: 1}
	t1.Sign(id)
	t2 := &Tx{Contract: "c", Fn: "f", Nonce: 2}
	t2.Sign(id)
	b := buildBlock(t, g, []*Tx{t1, t2}, id)
	if err := b.VerifyStructure(); err != nil {
		t.Fatalf("empty share IDs must not conflict: %v", err)
	}
}

func TestBlockRejectsBadTxSig(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	tx := signedTx(t, id, "s1", 1)
	b := buildBlock(t, g, []*Tx{tx}, id)
	tx.Sig[0] ^= 1
	b.Header.TxRoot = b.ComputeTxRoot() // keep root honest; sig is broken
	if err := b.VerifyStructure(); err == nil {
		t.Fatal("bad tx signature accepted")
	}
}

func TestGenesisDeterministicPerNetwork(t *testing.T) {
	if Genesis("a").Hash() != Genesis("a").Hash() {
		t.Fatal("genesis not deterministic")
	}
	if Genesis("a").Hash() == Genesis("b").Hash() {
		t.Fatal("different networks share genesis")
	}
}

func TestStoreAddAndHead(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	s := NewStore(g)
	b1 := buildBlock(t, g, nil, id)
	changed, err := s.Add(b1)
	if err != nil || !changed {
		t.Fatalf("Add = %v, %v", changed, err)
	}
	if s.Head().Hash() != b1.Hash() || s.Height() != 1 {
		t.Fatal("head not advanced")
	}
}

func TestStoreRejectsDuplicate(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	s := NewStore(g)
	b1 := buildBlock(t, g, nil, id)
	if _, err := s.Add(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(b1); !errors.Is(err, ErrDuplicateBlock) {
		t.Fatalf("want ErrDuplicateBlock, got %v", err)
	}
}

func TestStoreRejectsOrphan(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	s := NewStore(g)
	orphan := &Block{Header: Header{Height: 5, PrevHash: merkle.Hash{1, 2, 3}, Proposer: id.Address()}}
	orphan.Header.TxRoot = orphan.ComputeTxRoot()
	if _, err := s.Add(orphan); !errors.Is(err, ErrBadLinkage) {
		t.Fatalf("want ErrBadLinkage, got %v", err)
	}
}

func TestStoreRejectsWrongHeight(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	s := NewStore(g)
	b := buildBlock(t, g, nil, id)
	b.Header.Height = 7
	if _, err := s.Add(b); !errors.Is(err, ErrBadLinkage) {
		t.Fatalf("want ErrBadLinkage, got %v", err)
	}
}

func TestStoreForkChoiceLongest(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	s := NewStore(g)
	// Fork A: one block. Fork B: two blocks.
	a1 := buildBlock(t, g, nil, id)
	a1.Header.TimestampMicro = 1
	if _, err := s.Add(a1); err != nil {
		t.Fatal(err)
	}
	b1 := buildBlock(t, g, nil, id)
	b1.Header.TimestampMicro = 2
	if _, err := s.Add(b1); err != nil {
		t.Fatal(err)
	}
	b2 := buildBlock(t, b1, nil, id)
	changed, err := s.Add(b2)
	if err != nil || !changed {
		t.Fatalf("Add b2 = %v, %v", changed, err)
	}
	if s.Head().Hash() != b2.Hash() {
		t.Fatal("longest fork not chosen")
	}
	mc := s.MainChain()
	if len(mc) != 3 || mc[1].Hash() != b1.Hash() {
		t.Fatal("main chain wrong")
	}
	if s.IsOnMainChain(a1.Hash()) {
		t.Fatal("losing fork reported on main chain")
	}
	if !s.IsOnMainChain(b1.Hash()) {
		t.Fatal("winning fork not on main chain")
	}
}

func TestStoreTieBreakDeterministic(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	a1 := buildBlock(t, g, nil, id)
	a1.Header.TimestampMicro = 1
	b1 := buildBlock(t, g, nil, id)
	b1.Header.TimestampMicro = 2

	// Whichever arrival order, the head must be the same (lowest hash).
	s1 := NewStore(g)
	_, _ = s1.Add(a1)
	_, _ = s1.Add(b1)
	s2 := NewStore(g)
	_, _ = s2.Add(b1)
	_, _ = s2.Add(a1)
	if s1.Head().Hash() != s2.Head().Hash() {
		t.Fatal("tie break depends on arrival order")
	}
}

func TestStoreAtHeight(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	s := NewStore(g)
	b1 := buildBlock(t, g, nil, id)
	_, _ = s.Add(b1)
	got, ok := s.AtHeight(1)
	if !ok || got.Hash() != b1.Hash() {
		t.Fatal("AtHeight wrong")
	}
	if _, ok := s.AtHeight(9); ok {
		t.Fatal("AtHeight beyond head should fail")
	}
}

func TestVerifyChain(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	s := NewStore(g)
	prev := g
	for i := 0; i < 5; i++ {
		b := buildBlock(t, prev, []*Tx{signedTx(t, id, "", uint64(i))}, id)
		if _, err := s.Add(b); err != nil {
			t.Fatal(err)
		}
		prev = b
	}
	if err := s.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyChainDetectsHeaderTampering: mutating a stored block's header
// in memory must surface in VerifyChain even though the block hash is
// memoized — the audit path recomputes from the header.
func TestVerifyChainDetectsHeaderTampering(t *testing.T) {
	id := identity.MustNew("a")
	g := Genesis("t")
	s := NewStore(g)
	prev := g
	for i := 0; i < 3; i++ {
		b := buildBlock(t, prev, []*Tx{signedTx(t, id, "", uint64(i))}, id)
		if _, err := s.Add(b); err != nil {
			t.Fatal(err)
		}
		prev = b
	}
	mc := s.MainChain()
	mc[1].Header.TimestampMicro += 1_000_000 // forge a timestamp post-insertion
	if err := s.VerifyChain(); err == nil {
		t.Fatal("header tampering not detected")
	}
}
