package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"

	"medshare/internal/identity"
	"medshare/internal/merkle"
)

// Header carries the block metadata committed to by the block hash.
type Header struct {
	// Height is the distance from genesis (genesis is 0).
	Height uint64 `json:"height"`
	// PrevHash links to the parent block.
	PrevHash merkle.Hash `json:"prevHash"`
	// TxRoot is the Merkle root over the canonical transaction encodings.
	TxRoot merkle.Hash `json:"txRoot"`
	// StateRoot commits to the world state after executing this block.
	StateRoot merkle.Hash `json:"stateRoot"`
	// TimestampMicro is the proposer's clock, microseconds since epoch.
	TimestampMicro int64 `json:"ts"`
	// Proposer is the address of the mining/signing node.
	Proposer identity.Address `json:"proposer"`
	// Nonce is the proof-of-work counter (zero under PoA).
	Nonce uint64 `json:"nonce"`
	// Difficulty is the required number of leading zero bits of the block
	// hash under proof-of-work (zero under PoA).
	Difficulty uint8 `json:"difficulty"`
	// ProposerPub is the proposer's public key (PoA signature check).
	ProposerPub []byte `json:"proposerPub,omitempty"`
	// Sig is the proposer's signature over SigHash (PoA; empty under PoW).
	Sig []byte `json:"sig,omitempty"`
}

// SigHash is the digest a PoA proposer signs: the header minus Sig.
func (h *Header) SigHash() merkle.Hash {
	return h.hashContent(false)
}

// Hash returns the block hash (header including signature).
func (h *Header) Hash() merkle.Hash {
	return h.hashContent(true)
}

func (h *Header) hashContent(withSig bool) merkle.Hash {
	// Serialize into a stack buffer and hash once: this runs per nonce in
	// the proof-of-work seal loop, where the sha256.New + field-by-field
	// Write pattern costs measurable allocations.
	var arr [256]byte
	buf := arr[:0]
	buf = binary.BigEndian.AppendUint64(buf, h.Height)
	buf = append(buf, h.PrevHash[:]...)
	buf = append(buf, h.TxRoot[:]...)
	buf = append(buf, h.StateRoot[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.TimestampMicro))
	buf = append(buf, h.Proposer[:]...)
	buf = binary.BigEndian.AppendUint64(buf, h.Nonce)
	buf = append(buf, h.Difficulty)
	if withSig {
		buf = append(buf, h.ProposerPub...)
		buf = append(buf, h.Sig...)
	}
	return sha256.Sum256(buf)
}

// Block is a header plus its transactions.
type Block struct {
	Header Header `json:"header"`
	Txs    []*Tx  `json:"txs"`

	// hashMemo caches the block hash after the header is final. Every
	// layer above re-hashes blocks constantly (store linkage, fork
	// choice, head comparisons, audit); memoizing turns those into
	// pointer loads. Consensus engines reset it when sealing mutates the
	// header.
	hashMemo atomic.Pointer[merkle.Hash]
}

// Hash returns the block hash, computed once and cached. Callers must not
// mutate the header after the first call; consensus engines that seal (and
// therefore mutate) a header call ResetHashCache.
func (b *Block) Hash() merkle.Hash {
	if p := b.hashMemo.Load(); p != nil {
		return *p
	}
	h := b.Header.Hash()
	b.hashMemo.Store(&h)
	return h
}

// ResetHashCache invalidates the memoized block hash after a header
// mutation (sealing).
func (b *Block) ResetHashCache() { b.hashMemo.Store(nil) }

// HashString returns the hex block hash.
func (b *Block) HashString() string {
	h := b.Hash()
	return hex.EncodeToString(h[:])
}

// TxLeaves returns the canonical Merkle leaves for the transactions.
func (b *Block) TxLeaves() [][]byte {
	leaves := make([][]byte, len(b.Txs))
	for i, tx := range b.Txs {
		leaves[i] = tx.Encode()
	}
	return leaves
}

// ComputeTxRoot computes the Merkle root over the block's transactions.
func (b *Block) ComputeTxRoot() merkle.Hash {
	return merkle.Root(b.TxLeaves())
}

// VerifyStructure checks everything about a block that does not require
// executing it: the transaction root, each transaction's signature, and
// the paper's conflict rule that a block carries at most one transaction
// per shared table.
func (b *Block) VerifyStructure() error {
	if b.ComputeTxRoot() != b.Header.TxRoot {
		return ErrBadTxRoot
	}
	seenShare := make(map[string]bool, len(b.Txs))
	for i, tx := range b.Txs {
		if err := tx.Verify(); err != nil {
			return fmt.Errorf("tx %d: %w", i, err)
		}
		if tx.ShareID != "" {
			if seenShare[tx.ShareID] {
				return fmt.Errorf("%w: share %s at height %d", ErrShareConflict, tx.ShareID, b.Header.Height)
			}
			seenShare[tx.ShareID] = true
		}
	}
	return nil
}

// Genesis builds the deterministic genesis block for a network name. All
// nodes of a network construct the identical genesis locally.
func Genesis(network string) *Block {
	seed := sha256.Sum256([]byte("medshare-genesis:" + network))
	return &Block{Header: Header{
		Height:         0,
		PrevHash:       seed,
		TimestampMicro: 0,
	}}
}
