package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"medshare/internal/identity"
	"medshare/internal/merkle"
)

// Header carries the block metadata committed to by the block hash.
type Header struct {
	// Height is the distance from genesis (genesis is 0).
	Height uint64 `json:"height"`
	// PrevHash links to the parent block.
	PrevHash merkle.Hash `json:"prevHash"`
	// TxRoot is the Merkle root over the canonical transaction encodings.
	TxRoot merkle.Hash `json:"txRoot"`
	// StateRoot commits to the world state after executing this block.
	StateRoot merkle.Hash `json:"stateRoot"`
	// TimestampMicro is the proposer's clock, microseconds since epoch.
	TimestampMicro int64 `json:"ts"`
	// Proposer is the address of the mining/signing node.
	Proposer identity.Address `json:"proposer"`
	// Nonce is the proof-of-work counter (zero under PoA).
	Nonce uint64 `json:"nonce"`
	// Difficulty is the required number of leading zero bits of the block
	// hash under proof-of-work (zero under PoA).
	Difficulty uint8 `json:"difficulty"`
	// ProposerPub is the proposer's public key (PoA signature check).
	ProposerPub []byte `json:"proposerPub,omitempty"`
	// Sig is the proposer's signature over SigHash (PoA; empty under PoW).
	Sig []byte `json:"sig,omitempty"`
}

// SigHash is the digest a PoA proposer signs: the header minus Sig.
func (h *Header) SigHash() merkle.Hash {
	return h.hashContent(false)
}

// Hash returns the block hash (header including signature).
func (h *Header) Hash() merkle.Hash {
	return h.hashContent(true)
}

func (h *Header) hashContent(withSig bool) merkle.Hash {
	w := sha256.New()
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], h.Height)
	w.Write(n[:])
	w.Write(h.PrevHash[:])
	w.Write(h.TxRoot[:])
	w.Write(h.StateRoot[:])
	binary.BigEndian.PutUint64(n[:], uint64(h.TimestampMicro))
	w.Write(n[:])
	w.Write(h.Proposer[:])
	binary.BigEndian.PutUint64(n[:], h.Nonce)
	w.Write(n[:])
	w.Write([]byte{h.Difficulty})
	if withSig {
		w.Write(h.ProposerPub)
		w.Write(h.Sig)
	}
	var out merkle.Hash
	w.Sum(out[:0])
	return out
}

// Block is a header plus its transactions.
type Block struct {
	Header Header `json:"header"`
	Txs    []*Tx  `json:"txs"`
}

// Hash returns the block hash.
func (b *Block) Hash() merkle.Hash { return b.Header.Hash() }

// HashString returns the hex block hash.
func (b *Block) HashString() string {
	h := b.Hash()
	return hex.EncodeToString(h[:])
}

// TxLeaves returns the canonical Merkle leaves for the transactions.
func (b *Block) TxLeaves() [][]byte {
	leaves := make([][]byte, len(b.Txs))
	for i, tx := range b.Txs {
		leaves[i] = tx.Encode()
	}
	return leaves
}

// ComputeTxRoot computes the Merkle root over the block's transactions.
func (b *Block) ComputeTxRoot() merkle.Hash {
	return merkle.Root(b.TxLeaves())
}

// VerifyStructure checks everything about a block that does not require
// executing it: the transaction root, each transaction's signature, and
// the paper's conflict rule that a block carries at most one transaction
// per shared table.
func (b *Block) VerifyStructure() error {
	if b.ComputeTxRoot() != b.Header.TxRoot {
		return ErrBadTxRoot
	}
	seenShare := make(map[string]bool, len(b.Txs))
	for i, tx := range b.Txs {
		if err := tx.Verify(); err != nil {
			return fmt.Errorf("tx %d: %w", i, err)
		}
		if tx.ShareID != "" {
			if seenShare[tx.ShareID] {
				return fmt.Errorf("%w: share %s at height %d", ErrShareConflict, tx.ShareID, b.Header.Height)
			}
			seenShare[tx.ShareID] = true
		}
	}
	return nil
}

// Genesis builds the deterministic genesis block for a network name. All
// nodes of a network construct the identical genesis locally.
func Genesis(network string) *Block {
	seed := sha256.Sum256([]byte("medshare-genesis:" + network))
	return &Block{Header: Header{
		Height:         0,
		PrevHash:       seed,
		TimestampMicro: 0,
	}}
}
