// Package chain implements the ledger substrate: signed transactions that
// invoke smart contracts, Merkle-rooted blocks, and a block-tree store
// with longest-chain fork choice. The chain stores only share *metadata*
// operations (Fig. 3) — raw medical data never appears on the ledger.
package chain

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"medshare/internal/identity"
	"medshare/internal/merkle"
)

// Tx is a signed smart-contract invocation.
type Tx struct {
	// Contract names the target contract (e.g. "sharereg").
	Contract string `json:"contract"`
	// Fn is the contract function to invoke.
	Fn string `json:"fn"`
	// Args are the function arguments.
	Args [][]byte `json:"args"`
	// ShareID, when non-empty, declares which shared table the
	// transaction operates on. The block validator enforces the paper's
	// conflict rule: at most one transaction per ShareID per block
	// (Section III-B).
	ShareID string `json:"shareId,omitempty"`
	// From is the sender address; PubKey must hash to it.
	From identity.Address `json:"from"`
	// PubKey is the sender's ed25519 public key.
	PubKey []byte `json:"pubKey"`
	// Nonce is the per-sender sequence number (replay protection).
	Nonce uint64 `json:"nonce"`
	// TimestampMicro is the sender's clock at submission, microseconds
	// since the Unix epoch. Informational; consensus does not depend on it.
	TimestampMicro int64 `json:"ts"`
	// Sig is the ed25519 signature over SigHash.
	Sig []byte `json:"sig"`
}

// SigHash returns the digest the sender signs: everything except Sig.
func (tx *Tx) SigHash() merkle.Hash {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeBytes := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	writeStr(tx.Contract)
	writeStr(tx.Fn)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(tx.Args)))
	h.Write(n[:])
	for _, a := range tx.Args {
		writeBytes(a)
	}
	writeStr(tx.ShareID)
	h.Write(tx.From[:])
	writeBytes(tx.PubKey)
	binary.BigEndian.PutUint64(n[:], tx.Nonce)
	h.Write(n[:])
	binary.BigEndian.PutUint64(n[:], uint64(tx.TimestampMicro))
	h.Write(n[:])
	var out merkle.Hash
	h.Sum(out[:0])
	return out
}

// ID returns the transaction identifier: the hash of the signed content
// plus the signature.
func (tx *Tx) ID() merkle.Hash {
	sh := tx.SigHash()
	h := sha256.New()
	h.Write(sh[:])
	h.Write(tx.Sig)
	var out merkle.Hash
	h.Sum(out[:0])
	return out
}

// IDString returns the hex transaction ID.
func (tx *Tx) IDString() string {
	id := tx.ID()
	return hex.EncodeToString(id[:])
}

// Sign fills From, PubKey, and Sig using the identity.
func (tx *Tx) Sign(id *identity.Identity) {
	tx.From = id.Address()
	tx.PubKey = append([]byte(nil), id.PublicKey()...)
	sh := tx.SigHash()
	tx.Sig = id.Sign(sh[:])
}

// Errors returned by transaction and block verification.
var (
	ErrTxUnsigned     = errors.New("chain: transaction is unsigned")
	ErrTxBadSig       = errors.New("chain: transaction signature invalid")
	ErrShareConflict  = errors.New("chain: multiple transactions on one share in a block")
	ErrBadTxRoot      = errors.New("chain: block tx root mismatch")
	ErrBadLinkage     = errors.New("chain: block does not extend a known block")
	ErrDuplicateBlock = errors.New("chain: block already known")
	ErrUnknownBlock   = errors.New("chain: unknown block")
)

// Verify checks the signature and address binding.
func (tx *Tx) Verify() error {
	if len(tx.Sig) == 0 || len(tx.PubKey) == 0 {
		return ErrTxUnsigned
	}
	if len(tx.PubKey) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key length %d", ErrTxBadSig, len(tx.PubKey))
	}
	sh := tx.SigHash()
	if err := identity.Verify(tx.From, ed25519.PublicKey(tx.PubKey), sh[:], tx.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrTxBadSig, err)
	}
	return nil
}

// Encode returns the canonical byte encoding used as a Merkle leaf.
func (tx *Tx) Encode() []byte {
	sh := tx.SigHash()
	out := make([]byte, 0, len(sh)+len(tx.Sig))
	out = append(out, sh[:]...)
	out = append(out, tx.Sig...)
	return out
}
