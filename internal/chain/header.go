package chain

import (
	"encoding/binary"
	"fmt"
	"sync"

	"medshare/internal/merkle"
)

// This file is the light-client half of the chain package: a compact
// binary codec for bare headers (the chain.headers RPC moves these in
// bulk, so base64-in-JSON overhead would dominate the sync cost a light
// client exists to avoid) and HeaderChain, a standalone header-only
// verifier. A HeaderChain holds no bodies and replays nothing: it
// anchors on the locally computed deterministic genesis and accepts a
// header only if it extends the tip by exactly one height, links to the
// tip's hash, and passes the pluggable consensus check. That is enough
// to trust every header's StateRoot, which is the root all light-client
// proofs verify against.

// headerWireVersion tags the binary header frame layout.
const headerWireVersion = 1

// headerWireMaxLen caps variable-length fields while decoding, so a
// corrupt frame cannot drive a huge allocation before the bounds check.
const headerWireMaxLen = 1 << 20

// errHeaderWire marks a malformed binary header frame.
var errHeaderWire = fmt.Errorf("chain: malformed header frame")

// AppendHeaderBinary appends the compact binary encoding of h to dst.
// Fixed-width fields travel raw; only the proposer public key and
// signature are length-prefixed (varint).
func AppendHeaderBinary(dst []byte, h *Header) []byte {
	dst = binary.AppendUvarint(dst, h.Height)
	dst = append(dst, h.PrevHash[:]...)
	dst = append(dst, h.TxRoot[:]...)
	dst = append(dst, h.StateRoot[:]...)
	dst = binary.AppendUvarint(dst, uint64(h.TimestampMicro))
	dst = append(dst, h.Proposer[:]...)
	dst = binary.AppendUvarint(dst, h.Nonce)
	dst = append(dst, h.Difficulty)
	dst = binary.AppendUvarint(dst, uint64(len(h.ProposerPub)))
	dst = append(dst, h.ProposerPub...)
	dst = binary.AppendUvarint(dst, uint64(len(h.Sig)))
	return append(dst, h.Sig...)
}

// EncodeHeaders encodes a batch of headers into one binary frame:
// version byte, count, then each header via AppendHeaderBinary.
func EncodeHeaders(hs []Header) []byte {
	dst := make([]byte, 0, 1+len(hs)*200)
	dst = append(dst, headerWireVersion)
	dst = binary.AppendUvarint(dst, uint64(len(hs)))
	for i := range hs {
		dst = AppendHeaderBinary(dst, &hs[i])
	}
	return dst
}

// headerReader walks a frame with bounds checking.
type headerReader struct{ buf []byte }

func (r *headerReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, errHeaderWire
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *headerReader) hash(dst *merkle.Hash) error {
	if len(r.buf) < len(dst) {
		return errHeaderWire
	}
	copy(dst[:], r.buf)
	r.buf = r.buf[len(dst):]
	return nil
}

func (r *headerReader) raw(n int) ([]byte, error) {
	if n > len(r.buf) {
		return nil, errHeaderWire
	}
	out := r.buf[:n:n]
	r.buf = r.buf[n:]
	return out, nil
}

func (r *headerReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil || n > headerWireMaxLen {
		return nil, errHeaderWire
	}
	return r.raw(int(n))
}

func (r *headerReader) header(h *Header) error {
	var err error
	if h.Height, err = r.uvarint(); err != nil {
		return err
	}
	if err = r.hash(&h.PrevHash); err != nil {
		return err
	}
	if err = r.hash(&h.TxRoot); err != nil {
		return err
	}
	if err = r.hash(&h.StateRoot); err != nil {
		return err
	}
	ts, err := r.uvarint()
	if err != nil {
		return err
	}
	h.TimestampMicro = int64(ts)
	prop, err := r.raw(len(h.Proposer))
	if err != nil {
		return err
	}
	copy(h.Proposer[:], prop)
	if h.Nonce, err = r.uvarint(); err != nil {
		return err
	}
	diff, err := r.raw(1)
	if err != nil {
		return err
	}
	h.Difficulty = diff[0]
	if h.ProposerPub, err = r.bytes(); err != nil {
		return err
	}
	h.Sig, err = r.bytes()
	return err
}

// DecodeHeaders parses a frame produced by EncodeHeaders. Trailing
// bytes are rejected.
func DecodeHeaders(raw []byte) ([]Header, error) {
	r := headerReader{buf: raw}
	ver, err := r.raw(1)
	if err != nil || ver[0] != headerWireVersion {
		return nil, errHeaderWire
	}
	n, err := r.uvarint()
	if err != nil || n > headerWireMaxLen {
		return nil, errHeaderWire
	}
	out := make([]Header, 0, n)
	for i := uint64(0); i < n; i++ {
		var h Header
		if err := r.header(&h); err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	if len(r.buf) != 0 {
		return nil, errHeaderWire
	}
	return out, nil
}

// HeaderVerifier checks one header's consensus validity (typically
// consensus.Engine.VerifyHeader). Kept as a function type so chain does
// not import consensus.
type HeaderVerifier func(*Header) error

// HeaderChain is a header-only view of one network's main chain: the
// deterministic genesis plus every verified header in height order.
// Append enforces height+1 linkage, parent-hash continuity, and the
// consensus check — no body replay, no state. Safe for concurrent use.
type HeaderChain struct {
	mu      sync.RWMutex
	headers []Header // index == height; headers[0] is genesis
	verify  HeaderVerifier
}

// NewHeaderChain anchors a header chain on the locally computed genesis
// of the named network. verify may be nil (linkage-only, for tests).
func NewHeaderChain(network string, verify HeaderVerifier) *HeaderChain {
	g := Genesis(network)
	return &HeaderChain{headers: []Header{g.Header}, verify: verify}
}

// Height returns the tip height (0 = genesis only).
func (hc *HeaderChain) Height() uint64 {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	return hc.headers[len(hc.headers)-1].Height
}

// Head returns a copy of the tip header.
func (hc *HeaderChain) Head() Header {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	return hc.headers[len(hc.headers)-1]
}

// AtHeight returns a copy of the header at the given height.
func (hc *HeaderChain) AtHeight(height uint64) (Header, bool) {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	if height >= uint64(len(hc.headers)) {
		return Header{}, false
	}
	return hc.headers[height], true
}

// Append verifies h against the tip and extends the chain. A header at
// or below the tip height is reported via ErrHeaderStale (idempotent
// re-delivery is not an error worth retrying); a gap via ErrHeaderGap.
func (hc *HeaderChain) Append(h Header) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	tip := &hc.headers[len(hc.headers)-1]
	switch {
	case h.Height <= tip.Height:
		return ErrHeaderStale
	case h.Height > tip.Height+1:
		return fmt.Errorf("%w: tip %d, got %d", ErrHeaderGap, tip.Height, h.Height)
	}
	if tipHash := tip.Hash(); h.PrevHash != tipHash {
		return fmt.Errorf("chain: header %d does not link to tip %x", h.Height, tipHash[:6])
	}
	if hc.verify != nil {
		if err := hc.verify(&h); err != nil {
			return fmt.Errorf("chain: header %d rejected: %w", h.Height, err)
		}
	}
	hc.headers = append(hc.headers, h)
	return nil
}

// Bytes reports the retained memory of the header chain (binary
// encoding size — the deterministic "state a light client carries for
// the chain" number the experiments track).
func (hc *HeaderChain) Bytes() int {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	n := 0
	for i := range hc.headers {
		n += headerBinarySize(&hc.headers[i])
	}
	return n
}

func headerBinarySize(h *Header) int {
	// Three hashes + proposer address + fixed fields, plus the two
	// variable tails; varints approximated by their encoded length.
	return len(AppendHeaderBinary(make([]byte, 0, 256), h))
}

// Errors of the header-only chain.
var (
	ErrHeaderStale = fmt.Errorf("chain: header at or below tip")
	ErrHeaderGap   = fmt.Errorf("chain: header gap")
)
