package chain

import (
	"bytes"
	"fmt"
	"sync"

	"medshare/internal/merkle"
)

// Store keeps every known block in a block tree and tracks the best chain
// under longest-chain fork choice (ties broken by lowest block hash, so
// all nodes converge deterministically). Proof-of-authority networks never
// fork in practice; proof-of-work networks use the fork choice.
type Store struct {
	mu      sync.RWMutex
	genesis *Block
	byHash  map[merkle.Hash]*Block
	// children maps a block hash to the hashes of its known children.
	children map[merkle.Hash][]merkle.Hash
	head     *Block
	// persist, when set, observes every newly accepted block (called
	// outside the lock, after Add succeeds).
	persist func(*Block)
}

// NewStore creates a store seeded with the genesis block.
func NewStore(genesis *Block) *Store {
	s := &Store{
		genesis:  genesis,
		byHash:   make(map[merkle.Hash]*Block),
		children: make(map[merkle.Hash][]merkle.Hash),
		head:     genesis,
	}
	s.byHash[genesis.Hash()] = genesis
	return s
}

// Genesis returns the genesis block.
func (s *Store) Genesis() *Block { return s.genesis }

// Head returns the tip of the best chain.
func (s *Store) Head() *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head
}

// Height returns the best-chain height.
func (s *Store) Height() uint64 { return s.Head().Header.Height }

// Get returns the block with the given hash.
func (s *Store) Get(h merkle.Hash) (*Block, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.byHash[h]
	return b, ok
}

// Has reports whether the block is known.
func (s *Store) Has(h merkle.Hash) bool {
	_, ok := s.Get(h)
	return ok
}

// SetPersist registers a hook invoked (outside the store lock) for
// every block newly accepted by Add — the single choke point through
// which locally produced, gossiped, and synced blocks all pass.
// Durable nodes register it after recovery so recovered blocks are not
// re-appended to the log.
func (s *Store) SetPersist(fn func(*Block)) {
	s.mu.Lock()
	s.persist = fn
	s.mu.Unlock()
}

// Add inserts a block. The parent must already be known, the height must
// be parent+1, and the block structure must verify. Add reports whether
// the best head changed (callers then rebuild contract state if the new
// head is not a simple extension).
func (s *Store) Add(b *Block) (headChanged bool, err error) {
	headChanged, err = s.add(b)
	if err == nil {
		s.mu.RLock()
		fn := s.persist
		s.mu.RUnlock()
		if fn != nil {
			fn(b)
		}
	}
	return headChanged, err
}

func (s *Store) add(b *Block) (headChanged bool, err error) {
	if err := b.VerifyStructure(); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := b.Hash()
	if _, dup := s.byHash[h]; dup {
		return false, ErrDuplicateBlock
	}
	parent, ok := s.byHash[b.Header.PrevHash]
	if !ok {
		return false, fmt.Errorf("%w: parent %x", ErrBadLinkage, b.Header.PrevHash[:6])
	}
	if b.Header.Height != parent.Header.Height+1 {
		return false, fmt.Errorf("%w: height %d after parent height %d", ErrBadLinkage, b.Header.Height, parent.Header.Height)
	}
	s.byHash[h] = b
	s.children[b.Header.PrevHash] = append(s.children[b.Header.PrevHash], h)

	oldHead := s.head
	if better(b, s.head) {
		s.head = b
	}
	return s.head != oldHead, nil
}

// better implements the fork choice: higher wins; equal height breaks ties
// by lower hash.
func better(a, b *Block) bool {
	if a.Header.Height != b.Header.Height {
		return a.Header.Height > b.Header.Height
	}
	ah, bh := a.Hash(), b.Hash()
	return bytes.Compare(ah[:], bh[:]) < 0
}

// MainChain returns the blocks from genesis to the best head, inclusive.
func (s *Store) MainChain() []*Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Block, s.head.Header.Height+1)
	cur := s.head
	for {
		out[cur.Header.Height] = cur
		if cur.Header.Height == 0 {
			break
		}
		parent, ok := s.byHash[cur.Header.PrevHash]
		if !ok {
			// Unreachable: Add never stores a block with an unknown parent.
			panic("chain: broken linkage in main chain")
		}
		cur = parent
	}
	return out
}

// AtHeight returns the main-chain block at the given height.
func (s *Store) AtHeight(h uint64) (*Block, bool) {
	mc := s.MainChain()
	if h >= uint64(len(mc)) {
		return nil, false
	}
	return mc[h], true
}

// IsOnMainChain reports whether the block with the given hash is part of
// the current best chain.
func (s *Store) IsOnMainChain(h merkle.Hash) bool {
	s.mu.RLock()
	b, ok := s.byHash[h]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	got, ok := s.AtHeight(b.Header.Height)
	return ok && got.Hash() == h
}

// VerifyChain re-validates the whole main chain: linkage, structure, and
// monotone heights. The audit layer uses it for tamper detection, so
// linkage deliberately bypasses the memoized block hash and recomputes
// from the header — a header mutated after insertion must surface here,
// not be masked by a stale cache.
func (s *Store) VerifyChain() error {
	mc := s.MainChain()
	for i, b := range mc {
		if i == 0 {
			continue
		}
		if b.Header.PrevHash != mc[i-1].Header.Hash() {
			return fmt.Errorf("%w: block %d does not link to block %d", ErrBadLinkage, i, i-1)
		}
		if err := b.VerifyStructure(); err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
	}
	return nil
}
