package reldb

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// Column describes one attribute of a table.
type Column struct {
	Name string `json:"name"`
	Type Kind   `json:"type"`
	// Nullable permits NULL in this column. Key columns are never nullable.
	Nullable bool `json:"nullable,omitempty"`
}

// Schema describes a table: its name, ordered columns, and primary key.
type Schema struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
	// Key lists the primary-key column names, in key order. Every table in
	// the system is keyed; key-based row alignment is what makes the BX put
	// direction well behaved.
	Key []string `json:"key"`
}

// Errors reported by schema and table operations.
var (
	ErrNoSuchColumn  = errors.New("reldb: no such column")
	ErrNoSuchTable   = errors.New("reldb: no such table")
	ErrDuplicateKey  = errors.New("reldb: duplicate key")
	ErrKeyNotFound   = errors.New("reldb: key not found")
	ErrSchemaInvalid = errors.New("reldb: invalid schema")
	ErrTypeMismatch  = errors.New("reldb: type mismatch")
	ErrKeyImmutable  = errors.New("reldb: key columns are immutable in update")
)

// Validate checks structural invariants: non-empty name, at least one
// column, unique column names, a non-empty key whose columns all exist and
// are not nullable.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: empty table name", ErrSchemaInvalid)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("%w: table %s has no columns", ErrSchemaInvalid, s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("%w: table %s has an unnamed column", ErrSchemaInvalid, s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: table %s repeats column %s", ErrSchemaInvalid, s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if len(s.Key) == 0 {
		return fmt.Errorf("%w: table %s has no primary key", ErrSchemaInvalid, s.Name)
	}
	seenKey := make(map[string]bool, len(s.Key))
	for _, k := range s.Key {
		idx := s.ColumnIndex(k)
		if idx < 0 {
			return fmt.Errorf("%w: table %s key column %s does not exist", ErrSchemaInvalid, s.Name, k)
		}
		if seenKey[k] {
			return fmt.Errorf("%w: table %s repeats key column %s", ErrSchemaInvalid, s.Name, k)
		}
		seenKey[k] = true
		if s.Columns[idx].Nullable {
			return fmt.Errorf("%w: table %s key column %s must not be nullable", ErrSchemaInvalid, s.Name, k)
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the named column exists.
func (s Schema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// ColumnNames returns the column names in declaration order.
func (s Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// KeyIndexes returns the column positions of the primary-key columns.
func (s Schema) KeyIndexes() []int {
	out := make([]int, len(s.Key))
	for i, k := range s.Key {
		out[i] = s.ColumnIndex(k)
	}
	return out
}

// IsKeyColumn reports whether name is one of the primary-key columns.
func (s Schema) IsKeyColumn(name string) bool {
	for _, k := range s.Key {
		if k == name {
			return true
		}
	}
	return false
}

// Equal reports whether two schemas are structurally identical, ignoring
// the table name (so a view shipped between peers compares equal to the
// local replica even if named differently).
func (s Schema) Equal(o Schema) bool {
	if len(s.Columns) != len(o.Columns) || len(s.Key) != len(o.Key) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	for i := range s.Key {
		if s.Key[i] != o.Key[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := Schema{Name: s.Name}
	out.Columns = append([]Column(nil), s.Columns...)
	out.Key = append([]string(nil), s.Key...)
	return out
}

// Rename returns a copy of the schema with a different table name.
func (s Schema) Rename(name string) Schema {
	out := s.Clone()
	out.Name = name
	return out
}

// Project returns the schema restricted to cols (in the given order). The
// resulting key is `key`; every key column must be among cols. An empty key
// inherits the source key when all source key columns are retained, and is
// an error otherwise.
func (s Schema) Project(name string, cols []string, key []string) (Schema, error) {
	out := Schema{Name: name, Columns: make([]Column, 0, len(cols))}
	for _, c := range cols {
		idx := s.ColumnIndex(c)
		if idx < 0 {
			return Schema{}, fmt.Errorf("%w: %s (projecting %s)", ErrNoSuchColumn, c, s.Name)
		}
		out.Columns = append(out.Columns, s.Columns[idx])
	}
	if len(key) == 0 {
		for _, k := range s.Key {
			if !contains(cols, k) {
				return Schema{}, fmt.Errorf("%w: projection of %s drops key column %s and declares no new key", ErrSchemaInvalid, s.Name, k)
			}
		}
		key = append([]string(nil), s.Key...)
	}
	out.Key = append([]string(nil), key...)
	// The new key columns may have been nullable in the source; keys are
	// never nullable, so clear the flag on them.
	for _, k := range out.Key {
		if i := out.ColumnIndex(k); i >= 0 {
			out.Columns[i].Nullable = false
		}
	}
	if err := out.Validate(); err != nil {
		return Schema{}, err
	}
	return out, nil
}

// SchemaSumOf returns the digest a table built from s reports as
// SchemaSum — the schema half of the table-hash preimage (the table
// name is excluded, like Table.Hash). Light verifiers recompute it from
// a served schema to bind that schema to a hash-committed SchemaSum
// before trusting its key-column layout.
func SchemaSumOf(s Schema) [32]byte {
	var buf [256]byte
	return sha256.Sum256(appendSchemaCanonical(buf[:0], s))
}

// checkRow verifies that the row matches the schema arity, types, and
// nullability constraints.
func (s Schema) checkRow(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("%w: table %s expects %d values, got %d", ErrTypeMismatch, s.Name, len(s.Columns), len(r))
	}
	for i, c := range s.Columns {
		v := r[i]
		if v.IsNull() {
			if !c.Nullable {
				return fmt.Errorf("%w: table %s column %s is not nullable", ErrTypeMismatch, s.Name, c.Name)
			}
			continue
		}
		if v.Kind() != c.Type {
			return fmt.Errorf("%w: table %s column %s wants %s, got %s", ErrTypeMismatch, s.Name, c.Name, c.Type, v.Kind())
		}
	}
	return nil
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
