package reldb

import (
	"fmt"

	"medshare/internal/reldb/pmap"
)

// TableBuilder constructs a fresh table from a stream of rows in O(n)
// when the rows arrive in ascending primary-key order — which is the
// natural case everywhere a table is rebuilt from a canonical scan of
// another (relational operators, lens puts): the persistent storage
// iterates in key order, so a same-keyed rebuild streams ascending by
// construction. The builder sits directly on a pmap.Transient: ascending
// appends take the O(1) right-spine path, row entries and tree nodes
// come from slab arenas instead of one heap allocation each (the
// overhead that used to make whole-view rebuilds ~1.8x their
// pre-persistent cost), and if the stream ever goes out of order the
// transient degrades transparently to per-row inserts, so callers never
// need to know which case they are in.
//
// Append takes ownership of its row (InsertOwned semantics: the caller
// must not mutate it afterwards). Call Table exactly once when done.
type TableBuilder struct {
	t  *Table
	tr *pmap.Transient[*rowEntry]
	// entries is the current rowEntry arena chunk; entryCap is the next
	// chunk's size (geometric growth).
	entries  []rowEntry
	entryCap int
	keyBuf   []byte
	done     bool
}

// entrySlabMin and entrySlabMax bound the rowEntry arena chunk sizes
// (geometric growth: tiny tables pin a handful of spare entries, bulk
// builds amortize 128 ways).
const (
	entrySlabMin = 8
	entrySlabMax = 128
)

// NewTableBuilder returns a builder for a table with the given schema.
// The built table carries unkeyed priorities; the sharing layer reseeds
// stored replicas afterwards (Table.Reseeded).
func NewTableBuilder(schema Schema) (*TableBuilder, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	return &TableBuilder{t: t, tr: pmap.NewTransient[*rowEntry](nil)}, nil
}

// newEntry hands out one rowEntry from the slab.
func (b *TableBuilder) newEntry(r Row) *rowEntry {
	if len(b.entries) == 0 {
		if b.entryCap < entrySlabMin {
			b.entryCap = entrySlabMin
		}
		b.entries = make([]rowEntry, b.entryCap)
		if b.entryCap < entrySlabMax {
			b.entryCap *= 2
		}
	}
	e := &b.entries[0]
	b.entries = b.entries[1:]
	e.row = r
	return e
}

// Append adds an owned row, validating it against the schema and
// rejecting duplicate keys exactly like Table.InsertOwned.
func (b *TableBuilder) Append(r Row) error {
	if err := b.t.schema.checkRow(r); err != nil {
		return err
	}
	return b.appendChecked(r)
}

// appendChecked is Append without the schema check (for callers that
// already validated, e.g. rows coming out of a same-schema table).
func (b *TableBuilder) appendChecked(r Row) error {
	b.keyBuf = b.t.AppendKeyOf(b.keyBuf[:0], r)
	if !b.tr.Insert(string(b.keyBuf), b.newEntry(r)) {
		return fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, b.t.schema.Name, b.t.KeyValues(r))
	}
	return nil
}

// Peek returns the row appended under the ordered key encoding k, if
// any. It sees every appended row immediately, which is what lets
// operators that probe their own partial output (projection's
// functionality check) run on top of the builder.
func (b *TableBuilder) Peek(k []byte) (Row, bool) {
	e, ok := b.tr.GetBytes(k)
	if !ok {
		return nil, false
	}
	return e.row, true
}

// Len returns the number of rows appended so far.
func (b *TableBuilder) Len() int { return b.tr.Len() }

// Table finalizes and returns the built table. The builder must not be
// used afterwards.
func (b *TableBuilder) Table() *Table {
	if b.done {
		panic("reldb: TableBuilder.Table called twice")
	}
	b.done = true
	b.t.rows = b.tr.Freeze()
	b.tr = nil
	return b.t
}
