package reldb

import (
	"fmt"

	"medshare/internal/reldb/pmap"
)

// TableBuilder constructs a fresh table from a stream of rows in O(n)
// when the rows arrive in ascending primary-key order — which is the
// natural case everywhere a table is rebuilt from a canonical scan of
// another (relational operators, lens puts): the persistent storage
// iterates in key order, so a same-keyed rebuild streams ascending by
// construction. Ascending appends are buffered and turned into a
// perfectly balanced tree in one pass instead of n O(log n) path-copying
// inserts; if the stream ever goes out of order the builder degrades
// transparently to per-row inserts, so callers never need to know which
// case they are in.
//
// Append takes ownership of its row (InsertOwned semantics: the caller
// must not mutate it afterwards). Call Table exactly once when done.
type TableBuilder struct {
	t        *Table
	keys     []string
	entries  []*rowEntry
	degraded bool
	done     bool
}

// NewTableBuilder returns a builder for a table with the given schema.
func NewTableBuilder(schema Schema) (*TableBuilder, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	return &TableBuilder{t: t}, nil
}

// Append adds an owned row, validating it against the schema and
// rejecting duplicate keys exactly like Table.InsertOwned.
func (b *TableBuilder) Append(r Row) error {
	if err := b.t.schema.checkRow(r); err != nil {
		return err
	}
	return b.appendChecked(r)
}

// appendChecked is Append without the schema check (for callers that
// already validated, e.g. rows coming out of a same-schema table).
func (b *TableBuilder) appendChecked(r Row) error {
	k := b.t.keyOf(r)
	if b.degraded {
		return b.t.insertOwned(r)
	}
	if n := len(b.keys); n > 0 && k <= b.keys[n-1] {
		if k == b.keys[n-1] {
			return fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, b.t.schema.Name, b.t.KeyValues(r))
		}
		// Out of order: flush the sorted prefix and fall back to
		// per-row inserts (duplicates anywhere are caught there).
		b.t.rows = pmap.FromSorted(b.keys, b.entries)
		b.keys, b.entries = nil, nil
		b.degraded = true
		return b.t.insertOwned(r)
	}
	b.keys = append(b.keys, k)
	b.entries = append(b.entries, &rowEntry{row: r})
	return nil
}

// Peek returns the row appended under the ordered key encoding k, if
// any. It sees both flushed and still-buffered rows, which is what lets
// operators that probe their own partial output (projection's
// functionality check) run on top of the builder.
func (b *TableBuilder) Peek(k []byte) (Row, bool) {
	if !b.degraded {
		if n := len(b.keys); n > 0 {
			// Binary search the buffered ascending keys; the byte-slice
			// key is compared in place, never converted (no allocation).
			lo, hi := 0, n
			for lo < hi {
				mid := (lo + hi) / 2
				if pmap.CompareBytesKey(k, b.keys[mid]) > 0 {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < n && pmap.CompareBytesKey(k, b.keys[lo]) == 0 {
				return b.entries[lo].row, true
			}
		}
		return nil, false
	}
	return b.t.GetKeyBytes(k)
}

// Len returns the number of rows appended so far.
func (b *TableBuilder) Len() int {
	if b.degraded {
		return b.t.Len()
	}
	return len(b.keys)
}

// Table finalizes and returns the built table. The builder must not be
// used afterwards.
func (b *TableBuilder) Table() *Table {
	if b.done {
		panic("reldb: TableBuilder.Table called twice")
	}
	b.done = true
	if !b.degraded {
		b.t.rows = pmap.FromSorted(b.keys, b.entries)
		b.keys, b.entries = nil, nil
	}
	return b.t
}
