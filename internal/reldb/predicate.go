package reldb

import (
	"encoding/json"
	"fmt"
)

// Predicate evaluates a boolean condition against a row. Predicates are
// serializable so that selection lenses can be registered as share metadata
// on the blockchain and reconstructed by any peer.
type Predicate interface {
	// Eval reports whether the row satisfies the predicate.
	Eval(s Schema, r Row) (bool, error)
	// Columns returns the column names the predicate reads.
	Columns() []string
	// spec returns the serializable form.
	spec() predSpec
}

// CmpOp is a comparison operator used by column predicates.
type CmpOp string

// Supported comparison operators.
const (
	OpEq CmpOp = "eq"
	OpNe CmpOp = "ne"
	OpLt CmpOp = "lt"
	OpLe CmpOp = "le"
	OpGt CmpOp = "gt"
	OpGe CmpOp = "ge"
)

type predSpec struct {
	Op    string     `json:"op"` // "true", "cmp", "and", "or", "not", "null"
	Col   string     `json:"col,omitempty"`
	Cmp   CmpOp      `json:"cmp,omitempty"`
	Val   *Value     `json:"val,omitempty"`
	Inner []predSpec `json:"inner,omitempty"`
}

// True is the predicate that matches every row.
func True() Predicate { return truePred{} }

type truePred struct{}

func (truePred) Eval(Schema, Row) (bool, error) { return true, nil }
func (truePred) Columns() []string              { return nil }
func (truePred) spec() predSpec                 { return predSpec{Op: "true"} }

// Cmp compares the named column with a constant.
func Cmp(col string, op CmpOp, v Value) Predicate { return cmpPred{col: col, op: op, v: v} }

// Eq is shorthand for Cmp(col, OpEq, v).
func Eq(col string, v Value) Predicate { return Cmp(col, OpEq, v) }

type cmpPred struct {
	col string
	op  CmpOp
	v   Value
}

func (p cmpPred) Eval(s Schema, r Row) (bool, error) {
	i := s.ColumnIndex(p.col)
	if i < 0 {
		return false, fmt.Errorf("%w: %s (predicate)", ErrNoSuchColumn, p.col)
	}
	got := r[i]
	if got.IsNull() || p.v.IsNull() {
		// SQL-style three-valued logic collapsed to false: NULL compares
		// with nothing, except eq/ne against NULL which test null-ness.
		switch p.op {
		case OpEq:
			return got.IsNull() && p.v.IsNull(), nil
		case OpNe:
			return got.IsNull() != p.v.IsNull(), nil
		default:
			return false, nil
		}
	}
	if got.Kind() != p.v.Kind() {
		return false, fmt.Errorf("%w: predicate on %s compares %s with %s", ErrTypeMismatch, p.col, got.Kind(), p.v.Kind())
	}
	c := got.Compare(p.v)
	switch p.op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("reldb: unknown comparison op %q", p.op)
	}
}

func (p cmpPred) Columns() []string { return []string{p.col} }
func (p cmpPred) spec() predSpec {
	v := p.v
	return predSpec{Op: "cmp", Col: p.col, Cmp: p.op, Val: &v}
}

// IsNull matches rows whose named column is NULL.
func IsNull(col string) Predicate { return nullPred{col: col} }

type nullPred struct{ col string }

func (p nullPred) Eval(s Schema, r Row) (bool, error) {
	i := s.ColumnIndex(p.col)
	if i < 0 {
		return false, fmt.Errorf("%w: %s (predicate)", ErrNoSuchColumn, p.col)
	}
	return r[i].IsNull(), nil
}
func (p nullPred) Columns() []string { return []string{p.col} }
func (p nullPred) spec() predSpec    { return predSpec{Op: "null", Col: p.col} }

// And matches rows satisfying all inner predicates.
func And(ps ...Predicate) Predicate { return boolPred{op: "and", inner: ps} }

// Or matches rows satisfying at least one inner predicate.
func Or(ps ...Predicate) Predicate { return boolPred{op: "or", inner: ps} }

// Not matches rows not satisfying the inner predicate.
func Not(p Predicate) Predicate { return boolPred{op: "not", inner: []Predicate{p}} }

type boolPred struct {
	op    string
	inner []Predicate
}

func (p boolPred) Eval(s Schema, r Row) (bool, error) {
	switch p.op {
	case "and":
		for _, in := range p.inner {
			ok, err := in.Eval(s, r)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case "or":
		for _, in := range p.inner {
			ok, err := in.Eval(s, r)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case "not":
		ok, err := p.inner[0].Eval(s, r)
		return !ok, err
	default:
		return false, fmt.Errorf("reldb: unknown boolean op %q", p.op)
	}
}

func (p boolPred) Columns() []string {
	var out []string
	for _, in := range p.inner {
		out = append(out, in.Columns()...)
	}
	return out
}

func (p boolPred) spec() predSpec {
	out := predSpec{Op: p.op}
	for _, in := range p.inner {
		out.Inner = append(out.Inner, in.spec())
	}
	return out
}

// MarshalPredicate serializes a predicate to JSON.
func MarshalPredicate(p Predicate) ([]byte, error) {
	return json.Marshal(p.spec())
}

// UnmarshalPredicate reconstructs a predicate serialized by
// MarshalPredicate.
func UnmarshalPredicate(data []byte) (Predicate, error) {
	var sp predSpec
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, err
	}
	return predFromSpec(sp)
}

func predFromSpec(sp predSpec) (Predicate, error) {
	switch sp.Op {
	case "true":
		return True(), nil
	case "null":
		return IsNull(sp.Col), nil
	case "cmp":
		if sp.Val == nil {
			return nil, fmt.Errorf("reldb: cmp predicate on %s missing value", sp.Col)
		}
		return Cmp(sp.Col, sp.Cmp, *sp.Val), nil
	case "and", "or", "not":
		inner := make([]Predicate, 0, len(sp.Inner))
		for _, in := range sp.Inner {
			p, err := predFromSpec(in)
			if err != nil {
				return nil, err
			}
			inner = append(inner, p)
		}
		switch sp.Op {
		case "and":
			return And(inner...), nil
		case "or":
			return Or(inner...), nil
		default:
			if len(inner) != 1 {
				return nil, fmt.Errorf("reldb: not predicate wants 1 inner, got %d", len(inner))
			}
			return Not(inner[0]), nil
		}
	default:
		return nil, fmt.Errorf("reldb: unknown predicate op %q", sp.Op)
	}
}
