package reldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func bigPatients(tb testing.TB, n int) *Table {
	tb.Helper()
	t := MustNewTable(patientSchema())
	for i := 0; i < n; i++ {
		t.MustInsert(Row{I(int64(i)), S(fmt.Sprintf("p%d", i)), S("Osaka"), I(int64(20 + i%60))})
	}
	return t
}

// TestRowsZeroRowCopies: Rows() on a 1000-row table must not copy any row
// data — only the slice of row headers is allocated. This is the
// alloc-regression guard for the copy-on-write storage.
func TestRowsZeroRowCopies(t *testing.T) {
	tbl := bigPatients(t, 1000)
	var sink []Row
	allocs := testing.AllocsPerRun(20, func() {
		sink = tbl.Rows()
	})
	if allocs > 1 {
		t.Fatalf("Rows() allocates %v times per call, want 1 (the header slice)", allocs)
	}
	// The returned rows must be shared references, not copies.
	a, b := tbl.Rows(), tbl.Rows()
	if &a[0][0] != &b[0][0] {
		t.Fatal("Rows() copied row data")
	}
	_ = sink
}

// TestRowsCanonicalCached: repeated canonical reads must not re-sort.
func TestRowsCanonicalCached(t *testing.T) {
	tbl := bigPatients(t, 1000)
	tbl.RowsCanonical() // warm the order cache
	allocs := testing.AllocsPerRun(20, func() {
		tbl.RowsCanonical()
	})
	if allocs > 1 {
		t.Fatalf("RowsCanonical() allocates %v times per call after warm-up, want 1", allocs)
	}
	// Mutation invalidates the cache.
	tbl.MustInsert(Row{I(5000), S("new"), Null(), I(30)})
	rows := tbl.RowsCanonical()
	if v, _ := rows[len(rows)-1][0].Int(); v != 5000 {
		t.Fatal("canonical order cache not invalidated by insert")
	}
}

// TestCloneCOWIndependenceBothWays: mutations on either side of a clone
// must be invisible to the other, for every mutation kind.
func TestCloneCOWIndependenceBothWays(t *testing.T) {
	orig := bigPatients(t, 10)
	origHash := orig.Hash()

	clone := orig.Clone()
	if err := clone.Update(Row{I(1)}, map[string]Value{"age": I(99)}); err != nil {
		t.Fatal(err)
	}
	if err := clone.Delete(Row{I(2)}); err != nil {
		t.Fatal(err)
	}
	clone.MustInsert(Row{I(100), S("new"), Null(), I(1)})
	if orig.Hash() != origHash {
		t.Fatal("clone mutations leaked into original")
	}
	if v, _ := mustRow(t, orig, Row{I(1)})[3].Int(); v != 21 {
		t.Fatal("original row changed")
	}

	clone2 := orig.Clone()
	if err := orig.Update(Row{I(3)}, map[string]Value{"city": S("Kyoto")}); err != nil {
		t.Fatal(err)
	}
	if err := orig.Delete(Row{I(4)}); err != nil {
		t.Fatal(err)
	}
	if clone2.Hash() != origHash {
		t.Fatal("original mutations leaked into clone")
	}
	if !clone2.Has(Row{I(4)}) {
		t.Fatal("delete on original visible through clone")
	}
}

func mustRow(t *testing.T, tbl *Table, key Row) Row {
	t.Helper()
	r, ok := tbl.Get(key)
	if !ok {
		t.Fatalf("row %v missing", key)
	}
	return r
}

// TestIncrementalHashAgreesWithRebuild drives a random mutation sequence
// with Hash() calls interleaved (so the incremental maintenance runs) and
// checks the final hash equals that of a freshly built table with the
// same contents.
func TestIncrementalHashAgreesWithRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := MustNewTable(patientSchema())
		for op := 0; op < 120; op++ {
			id := int64(rng.Intn(25))
			switch rng.Intn(5) {
			case 0:
				_ = tbl.Insert(Row{I(id), S(fmt.Sprintf("p%d", id)), Null(), I(int64(rng.Intn(90)))})
			case 1:
				_ = tbl.Delete(Row{I(id)})
			case 2:
				_ = tbl.Update(Row{I(id)}, map[string]Value{"age": I(int64(rng.Intn(90)))})
			case 3:
				_ = tbl.Upsert(Row{I(id), S(fmt.Sprintf("q%d", id)), S("Kobe"), I(int64(rng.Intn(90)))})
			case 4:
				_ = tbl.Hash() // force the lazy digest build mid-sequence
			}
		}
		rebuilt := MustNewTable(patientSchema())
		for _, r := range tbl.Rows() {
			rebuilt.MustInsert(r)
		}
		if tbl.Hash() != rebuilt.Hash() {
			t.Logf("seed %d: incremental hash diverged from rebuild", seed)
			return false
		}
		if !tbl.Equal(rebuilt) {
			t.Logf("seed %d: contents diverged", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestHashAfterChangesetApply: the O(changed rows) replica path — clone
// the base, apply a changeset, hash — must agree with a full rebuild.
func TestHashAfterChangesetApply(t *testing.T) {
	base := bigPatients(t, 50)
	base.Hash() // replicas are hashed, so clones inherit digest state
	target := base.Clone()
	if err := target.Update(Row{I(7)}, map[string]Value{"age": I(77)}); err != nil {
		t.Fatal(err)
	}
	if err := target.Delete(Row{I(8)}); err != nil {
		t.Fatal(err)
	}
	target.MustInsert(Row{I(900), S("new"), Null(), I(1)})

	cs, err := base.Diff(target)
	if err != nil {
		t.Fatal(err)
	}
	applied := base.Clone()
	if err := applied.Apply(cs); err != nil {
		t.Fatal(err)
	}
	if applied.Hash() != target.Hash() {
		t.Fatal("hash after changeset apply diverges")
	}
	rebuilt := MustNewTable(patientSchema())
	for _, r := range target.Rows() {
		rebuilt.MustInsert(r)
	}
	if applied.Hash() != rebuilt.Hash() {
		t.Fatal("hash after changeset apply diverges from rebuild")
	}
}

// TestValidateDiffRejectsPaddedChangesets: a delete+insert pair for an
// unchanged row reproduces the right table under Apply (so it passes a
// payload-hash check) but is not the minimal diff — replaying it through
// a lens's structural-edit policies would wipe hidden source columns.
// ValidateDiff must reject it, and must accept real diffs and key renames.
func TestValidateDiffRejectsPaddedChangesets(t *testing.T) {
	base := bigPatients(t, 10)
	target := base.Clone()
	if err := target.Update(Row{I(3)}, map[string]Value{"age": I(99)}); err != nil {
		t.Fatal(err)
	}

	good, err := base.Diff(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.ValidateDiff(target, good); err != nil {
		t.Fatalf("minimal diff rejected: %v", err)
	}

	// Pad the changeset with a no-op delete+insert of an unchanged row.
	row := mustRow(t, base, Row{I(5)})
	padded := Changeset{
		Updated:  good.Updated,
		Deleted:  []Row{row},
		Inserted: []Row{row},
	}
	applied := base.Clone()
	if err := applied.Apply(padded); err != nil {
		t.Fatal(err)
	}
	if applied.Hash() != target.Hash() {
		t.Fatal("padded changeset should still reproduce the target (that is the attack)")
	}
	if err := base.ValidateDiff(target, padded); err == nil {
		t.Fatal("padded changeset passed validation")
	}

	// A genuine key rename (delete key A, insert key B) stays valid.
	renameTarget := base.Clone()
	if err := renameTarget.Delete(Row{I(6)}); err != nil {
		t.Fatal(err)
	}
	moved := mustRow(t, base, Row{I(6)}).Clone()
	moved[0] = I(600)
	renameTarget.MustInsert(moved)
	rename, err := base.Diff(renameTarget)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.ValidateDiff(renameTarget, rename); err != nil {
		t.Fatalf("key rename rejected: %v", err)
	}
}

// TestRenamedSharesStorageAndHash: Renamed is O(1) in row data and the
// hash ignores the table name (the paper's D13/D31 replicas).
func TestRenamedSharesStorageAndHash(t *testing.T) {
	a := bigPatients(t, 100)
	b := a.Renamed("other")
	if a.Hash() != b.Hash() {
		t.Fatal("hash depends on table name")
	}
	ra, rb := a.Rows(), b.Rows()
	if &ra[0][0] != &rb[0][0] {
		t.Fatal("Renamed copied row data")
	}
}
