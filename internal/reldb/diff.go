package reldb

import (
	"fmt"

	"medshare/internal/reldb/pmap"
)

// RowChange records an update to a single row: the old and new images.
type RowChange struct {
	Before Row `json:"before"`
	After  Row `json:"after"`
}

// Changeset is the difference between two versions of a table with the
// same schema. Shares transfer changesets between peers instead of whole
// tables when the receiving side already holds the previous version.
type Changeset struct {
	Inserted []Row       `json:"inserted,omitempty"`
	Deleted  []Row       `json:"deleted,omitempty"`
	Updated  []RowChange `json:"updated,omitempty"`
}

// Empty reports whether the changeset contains no changes.
func (c Changeset) Empty() bool {
	return len(c.Inserted) == 0 && len(c.Deleted) == 0 && len(c.Updated) == 0
}

// Size returns the number of row-level changes.
func (c Changeset) Size() int {
	return len(c.Inserted) + len(c.Deleted) + len(c.Updated)
}

// ChangedColumns returns the set of column names touched by the changeset.
// The sharing layer uses it for attribute-level permission checks (Fig. 3)
// and overlap analysis (Fig. 5 step 6):
//
//   - updates contribute exactly the differing columns;
//   - a delete+insert pair with identical non-key values is a key rename
//     and contributes only the key columns (renaming a medication must not
//     demand write permission on its untouched mechanism);
//   - unpaired inserts and deletes create or destroy whole entries and
//     contribute every column.
func (c Changeset) ChangedColumns(s Schema) map[string]bool {
	out := make(map[string]bool)
	for _, u := range c.Updated {
		for i, col := range s.Columns {
			if i < len(u.Before) && i < len(u.After) && !u.Before[i].Equal(u.After[i]) {
				out[col.Name] = true
			}
		}
	}
	if len(c.Inserted) == 0 && len(c.Deleted) == 0 {
		return out
	}

	keyIdx := make(map[int]bool, len(s.Key))
	for _, i := range s.KeyIndexes() {
		keyIdx[i] = true
	}
	nonKeySig := func(r Row) string {
		var buf []byte
		for i, v := range r {
			if !keyIdx[i] {
				buf = v.AppendCanonical(buf)
			}
		}
		return string(buf)
	}
	// Multiset of deleted rows by their non-key content.
	deleted := make(map[string]int, len(c.Deleted))
	for _, r := range c.Deleted {
		deleted[nonKeySig(r)]++
	}
	allCols := false
	renames := 0
	for _, r := range c.Inserted {
		sig := nonKeySig(r)
		if deleted[sig] > 0 {
			deleted[sig]--
			renames++
			continue
		}
		allCols = true
	}
	for _, n := range deleted {
		if n > 0 {
			allCols = true
		}
	}
	if renames > 0 {
		for _, k := range s.Key {
			out[k] = true
		}
	}
	if allCols {
		for _, col := range s.Columns {
			out[col.Name] = true
		}
	}
	return out
}

// Diff computes the changeset that transforms t into target. Rows are
// matched by primary key; each changeset section lists rows in canonical
// key order. The schemas must be equal (modulo table name).
//
// The comparison is structural over the persistent row storage:
// subtrees the two tables share by pointer are skipped wholesale, so
// diffing a snapshot against a descendant produced by k edits (the
// ProposeUpdate/UpdateView pattern: clone, edit, diff) costs
// O(k log n), not O(n).
func (t *Table) Diff(target *Table) (Changeset, error) {
	if !t.schema.Equal(target.schema) {
		return Changeset{}, fmt.Errorf("%w: diff between incompatible schemas %s and %s", ErrSchemaInvalid, t.schema.Name, target.schema.Name)
	}
	var cs Changeset
	pmap.Diff(t.rows, target.rows, sameRowEntry,
		func(_ string, e *rowEntry) bool { cs.Deleted = append(cs.Deleted, e.row); return true },
		func(_ string, e *rowEntry) bool { cs.Inserted = append(cs.Inserted, e.row); return true },
		func(_ string, before, after *rowEntry) bool {
			cs.Updated = append(cs.Updated, RowChange{Before: before.row, After: after.row})
			return true
		},
	)
	return cs, nil
}

// ValidateDiff checks that cs is the *minimal* keyed changeset from t to
// target (up to ordering) — every delete names a row of t whose key is
// absent from target, every insert a row of target whose key is absent
// from t, and every update matches both sides exactly. Receivers of wire
// changesets use it before delta-propagating a put: a non-minimal
// changeset (e.g. a delete+insert pair for an unchanged row) reproduces
// the right table under Apply yet would corrupt hidden source columns
// when replayed through a lens's structural-edit policies.
func (t *Table) ValidateDiff(target *Table, cs Changeset) error {
	bad := func(kind string, key Row) error {
		return fmt.Errorf("%w: non-minimal changeset: %s of key %v", ErrSchemaInvalid, kind, key)
	}
	for _, r := range cs.Deleted {
		key := t.KeyValues(r)
		old, ok := t.Get(key)
		if !ok || !old.Equal(r) || target.Has(key) {
			return bad("delete", key)
		}
	}
	for _, r := range cs.Inserted {
		key := t.KeyValues(r)
		now, ok := target.Get(key)
		if !ok || !now.Equal(r) || t.Has(key) {
			return bad("insert", key)
		}
	}
	for _, u := range cs.Updated {
		key := t.KeyValues(u.After)
		old, okOld := t.Get(key)
		now, okNew := target.Get(key)
		if !okOld || !okNew || !old.Equal(u.Before) || !now.Equal(u.After) {
			return bad("update", key)
		}
	}
	return nil
}

// Apply mutates the table by applying the changeset. Applying the result
// of a.Diff(b) to a clone of a yields a table equal to b. The table takes
// ownership of the changeset's rows; changesets are immutable transfer
// objects and must not be mutated after Apply.
func (t *Table) Apply(cs Changeset) error {
	for _, r := range cs.Deleted {
		if err := t.Delete(t.KeyValues(r)); err != nil {
			return fmt.Errorf("apply delete: %w", err)
		}
	}
	for _, u := range cs.Updated {
		if err := t.UpsertOwned(u.After); err != nil {
			return fmt.Errorf("apply update: %w", err)
		}
	}
	for _, r := range cs.Inserted {
		if err := t.InsertOwned(r); err != nil {
			return fmt.Errorf("apply insert: %w", err)
		}
	}
	return nil
}
