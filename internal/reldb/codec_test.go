package reldb

import (
	"strings"
	"testing"
	"time"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tbl := newPatients(t, alice(), bob())
	raw, err := MarshalTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTable(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Equal(back) {
		t.Fatal("table changed across JSON round trip")
	}
	if tbl.Hash() != back.Hash() {
		t.Fatal("hash changed across JSON round trip")
	}
}

func TestTableJSONDeterministic(t *testing.T) {
	a := newPatients(t, alice(), bob())
	b := newPatients(t, bob(), alice())
	ra, _ := MarshalTable(a)
	rb, _ := MarshalTable(b)
	// Names equal, contents equal, insertion order different: encodings
	// must match byte for byte (canonical row order).
	if string(ra) != string(rb) {
		t.Fatal("encoding depends on insertion order")
	}
}

func TestTableJSONWithTimes(t *testing.T) {
	s := Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "at", Type: KindTime},
		},
		Key: []string{"id"},
	}
	tbl := MustNewTable(s)
	tbl.MustInsert(Row{I(1), T(time.Date(2019, 4, 24, 1, 2, 3, 456789000, time.UTC))})
	raw, err := MarshalTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTable(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Equal(back) {
		t.Fatal("time values corrupted")
	}
}

func TestUnmarshalTableRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalTable([]byte("no")); err == nil {
		t.Fatal("garbage should fail")
	}
	// Valid JSON, invalid schema.
	if _, err := UnmarshalTable([]byte(`{"schema":{"name":"x","columns":[],"key":[]},"rows":[]}`)); err == nil {
		t.Fatal("invalid schema should fail")
	}
}

func TestChangesetJSONRoundTrip(t *testing.T) {
	a := newPatients(t, alice(), bob())
	b := newPatients(t, alice())
	if err := b.Update(Row{I(1)}, map[string]Value{"age": I(77)}); err != nil {
		t.Fatal(err)
	}
	cs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalChangeset(cs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalChangeset(raw)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	if err := c.Apply(back); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(b) {
		t.Fatal("changeset semantics changed across JSON")
	}
}

func TestFormat(t *testing.T) {
	tbl := newPatients(t, alice())
	out := Format(tbl)
	for _, want := range []string{"patients", "id", "name", "alice", "Osaka", "(key: id)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format output missing %q:\n%s", want, out)
		}
	}
}
