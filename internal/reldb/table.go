package reldb

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"medshare/internal/merkle"
	"medshare/internal/reldb/pmap"
)

// Table is an in-memory relation: a schema plus rows stored in a
// persistent (structurally shared) ordered map keyed by the
// order-preserving encoding of each row's primary key. In-order
// traversal of that map *is* canonical (key-sorted) row order, so two
// tables with the same contents behave identically regardless of
// mutation history and no sorted-order cache exists to invalidate.
//
// Storage is persistent rather than copy-on-write: Clone shares the row
// map with the original in O(1), and every mutation path-copies only the
// O(log n) spine from the root to the touched key — there is no
// "unshare the whole table" step, so a k-row delta costs O(k log n)
// regardless of how many snapshots share the storage. Rows are immutable
// once inside a table — accessors (Rows, RowsCanonical, Get, Scan)
// return shared references that callers must treat as read-only; all
// mutation goes through Insert / Update / Upsert / Delete, which replace
// whole rows.
//
// Table is not safe for concurrent mutation; Database serializes access.
// Concurrent *readers* of one shared snapshot are safe, including the
// lazy hash and secondary-index builds.
type Table struct {
	schema Schema
	// keyIdx caches schema.KeyIndexes(); the schema is immutable after
	// construction (Renamed changes only the name).
	keyIdx []int
	// rows maps the ordered primary-key encoding to the row entry. The
	// map's canonical (history-independent) treap shape plus per-node
	// cached subtree digests make Table.Hash a Merkle root: no hash
	// state lives on the Table itself — digests ride on the shared tree
	// nodes, are built lazily by the first Hash() call, and a k-row
	// delta leaves exactly the O(k log n) path-copied nodes uncached for
	// the next Hash() to fill in. See Hash, RowsRoot, ProveRow.
	rows pmap.Map[*rowEntry]
	// schemaSum digests the canonical schema encoding (name excluded).
	schemaSum [32]byte
	// secondary points to the current set of secondary indexes, keyed by
	// the joined column names. Built lazily by the first RowsByCols call
	// over a column set (read-only callers may share one snapshot, so
	// builds publish copy-on-write under secMu) and maintained
	// incrementally by every mutator afterwards — each index is itself a
	// persistent map, so maintenance is O(log n) path copying, never a
	// rebuild.
	secondary atomic.Pointer[map[string]*secIndex]
	secMu     sync.Mutex
	// secOwned marks the current secondary registry (the map and its
	// secIndex structs, not the persistent trees inside) as private to
	// this instance: mutators may update it in place. Clone clears it on
	// both sides — the registry is then shared, and whichever side
	// mutates next copies it first (the trees themselves are persistent
	// and always shared safely). Atomic because concurrent snapshots may
	// race to clear it on one shared instance.
	secOwned atomic.Bool
}

// rowEntry is one stored row plus its lazily computed canonical digest.
// Entries are immutable apart from the idempotent digest cache and are
// shared structurally between every snapshot containing the row.
type rowEntry struct {
	row Row
	// dig caches rowDigest(row). Atomic because concurrent readers of a
	// shared snapshot may both run the lazy hash build; the digest is a
	// pure function of the row, so racing stores write the same value.
	dig atomic.Pointer[[32]byte]
}

// digest returns (computing and caching on first use) the row's
// canonical leaf digest — merkle.HashLeaf over the canonical row
// encoding, the same domain-separated leaf construction the block-level
// Merkle trees use, so table-row and block hashing cannot be spliced
// into each other.
func (e *rowEntry) digest() [32]byte {
	if p := e.dig.Load(); p != nil {
		return *p
	}
	d := rowDigest(e.row)
	e.dig.Store(&d)
	return d
}

// entryRow projects a stored entry to its row; top-level so the
// row-accessor hot paths can pass it to pmap.AppendMapped without a
// closure allocation.
func entryRow(e *rowEntry) Row { return e.row }

// secIndex maps a composite key — the ordered encoding of a non-key
// column tuple followed by the ordered primary-key encoding — to
// presence. A group lookup is a prefix scan (the composite encodings of
// one secondary tuple are contiguous and ordered by primary key), and
// index maintenance is O(log n) per touched row through the persistent
// map, shared structurally across snapshots exactly like the row
// storage.
type secIndex struct {
	cols    []int // column positions forming the secondary key
	entries pmap.Map[struct{}]
}

// rowDigest hashes a row's canonical encoding as a Merkle leaf.
func rowDigest(r Row) [32]byte {
	var buf [192]byte
	return merkle.HashLeaf(r.AppendCanonical(buf[:0]))
}

// rowEntryLeaf adapts rowEntry.digest to pmap's Merkle leaf signature.
// The storage key is not hashed separately: it is a pure function of the
// row's primary-key columns, which the canonical row encoding commits
// to. Top-level so digest walks pass it without a closure allocation.
func rowEntryLeaf(_ string, e *rowEntry) pmap.Hash { return e.digest() }

// appendSchemaCanonical appends the deterministic schema encoding (columns
// and key; the table name is deliberately excluded — see AppendCanonical).
func appendSchemaCanonical(dst []byte, s Schema) []byte {
	for _, c := range s.Columns {
		dst = append(dst, []byte(c.Name)...)
		dst = append(dst, 0, byte(c.Type))
		if c.Nullable {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	dst = append(dst, 0)
	for _, k := range s.Key {
		dst = append(dst, []byte(k)...)
		dst = append(dst, 0)
	}
	dst = append(dst, 0)
	return dst
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	sc := schema.Clone()
	var buf [256]byte
	return &Table{
		schema:    sc,
		keyIdx:    sc.KeyIndexes(),
		schemaSum: sha256.Sum256(appendSchemaCanonical(buf[:0], sc)),
	}, nil
}

// MustNewTable is NewTable that panics on invalid schemas; intended for
// statically known schemas in tests and examples.
func MustNewTable(schema Schema) *Table {
	t, err := NewTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema.Clone() }

// SchemaSum returns the digest of the canonical schema encoding (the
// table name excluded, like Hash) — a cheap memo key for callers that
// cache per-schema derived state (the join lens's column plan).
func (t *Table) SchemaSum() [32]byte { return t.schemaSum }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of rows.
func (t *Table) Len() int { return t.rows.Len() }

// keyOf extracts the ordered (storage) key encoding from a full row.
func (t *Table) keyOf(r Row) string {
	var buf []byte
	for _, i := range t.keyIdx {
		buf = r[i].AppendOrdered(buf)
	}
	return string(buf)
}

// KeyValues extracts the primary-key values from a full row, in key order.
func (t *Table) KeyValues(r Row) Row {
	out := make(Row, len(t.keyIdx))
	for i, j := range t.keyIdx {
		out[i] = r[j]
	}
	return out
}

// AppendKeyOf appends the ordered key encoding of a full row to dst, the
// same encoding GetKeyBytes looks up (Value.AppendOrdered over the key
// columns). Hot paths use it to probe the storage without materializing
// a key tuple.
func (t *Table) AppendKeyOf(dst []byte, r Row) []byte {
	for _, i := range t.keyIdx {
		dst = r[i].AppendOrdered(dst)
	}
	return dst
}

// encodeKey encodes a key tuple (values in key order) with the ordered
// storage encoding.
func encodeKey(key Row) string {
	var buf []byte
	for _, v := range key {
		buf = v.AppendOrdered(buf)
	}
	return string(buf)
}

// Insert adds a row. It fails if the row violates the schema or duplicates
// an existing key. The row is cloned; the caller keeps ownership of r.
func (t *Table) Insert(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	return t.insertOwned(r.Clone())
}

// InsertOwned adds a row without copying it: the table takes ownership,
// and the caller must never mutate r afterwards. It is the allocation-free
// insert for code that constructs rows it will not reuse (lens puts,
// relational operators, changeset application).
func (t *Table) InsertOwned(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	return t.insertOwned(r)
}

func (t *Table) insertOwned(r Row) error {
	k := t.keyOf(r)
	if _, dup := t.rows.Get(k); dup {
		return fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.schema.Name, t.KeyValues(r))
	}
	t.insertEntry(k, r)
	return nil
}

// insertEntry stores a fresh row under key k (known absent), maintaining
// the secondary indexes. No hash bookkeeping is needed: the Merkle
// digests live on the tree nodes, and the path copy leaves exactly the
// changed nodes uncached.
func (t *Table) insertEntry(k string, r Row) {
	e := &rowEntry{row: r}
	t.rows, _ = t.rows.Set(k, e)
	t.secAdd(r, k)
}

// MustInsert is Insert that panics on error; for tests and fixtures.
func (t *Table) MustInsert(r Row) {
	if err := t.Insert(r); err != nil {
		panic(err)
	}
}

// Get returns the row with the given key tuple. The row is a shared
// reference and must be treated as read-only.
func (t *Table) Get(key Row) (Row, bool) {
	e, ok := t.rows.Get(encodeKey(key))
	if !ok {
		return nil, false
	}
	return e.row, true
}

// GetKeyBytes returns the row whose ordered key encoding equals k (as
// produced by AppendKeyOf or Value.AppendOrdered over the key tuple).
// The row is a shared reference and must be treated as read-only.
func (t *Table) GetKeyBytes(k []byte) (Row, bool) {
	e, ok := t.rows.GetBytes(k)
	if !ok {
		return nil, false
	}
	return e.row, true
}

// Has reports whether a row with the given key tuple exists.
func (t *Table) Has(key Row) bool {
	_, ok := t.rows.Get(encodeKey(key))
	return ok
}

// replaceEntry swaps the stored row under key k (already present, same
// primary key) for an owned replacement, maintaining the secondary
// indexes.
func (t *Table) replaceEntry(k string, old *rowEntry, r Row) {
	e := &rowEntry{row: r}
	t.rows, _ = t.rows.Set(k, e)
	t.secReplace(old.row, r, k)
}

// Update modifies the non-key columns named in set for the row with the
// given key. Attempting to set a key column is an error (delete and
// re-insert instead, which models the relational view of key changes).
func (t *Table) Update(key Row, set map[string]Value) error {
	k := encodeKey(key)
	old, ok := t.rows.Get(k)
	if !ok {
		return fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	updated := old.row.Clone()
	for col, v := range set {
		ci := t.schema.ColumnIndex(col)
		if ci < 0 {
			return fmt.Errorf("%w: %s (updating %s)", ErrNoSuchColumn, col, t.schema.Name)
		}
		if t.schema.IsKeyColumn(col) {
			return fmt.Errorf("%w: table %s column %s", ErrKeyImmutable, t.schema.Name, col)
		}
		updated[ci] = v
	}
	if err := t.schema.checkRow(updated); err != nil {
		return err
	}
	t.replaceEntry(k, old, updated)
	return nil
}

// UpdateWhere applies set to every row matching pred and reports how many
// rows changed.
func (t *Table) UpdateWhere(pred Predicate, set map[string]Value) (int, error) {
	n := 0
	for _, r := range t.Rows() {
		ok, err := pred.Eval(t.schema, r)
		if err != nil {
			return n, err
		}
		if !ok {
			continue
		}
		if err := t.Update(t.KeyValues(r), set); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Delete removes the row with the given key tuple.
func (t *Table) Delete(key Row) error {
	ks := encodeKey(key)
	e, ok := t.rows.Get(ks)
	if !ok {
		return fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	t.rows, _ = t.rows.Delete(ks)
	t.secRemove(e.row, ks)
	return nil
}

// DeleteWhere removes every row matching pred and reports how many were
// removed.
func (t *Table) DeleteWhere(pred Predicate) (int, error) {
	n := 0
	for _, r := range t.Rows() {
		ok, err := pred.Eval(t.schema, r)
		if err != nil {
			return n, err
		}
		if ok {
			if err := t.Delete(t.KeyValues(r)); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// Upsert inserts the row, or replaces the existing row with the same key.
// The row is cloned; the caller keeps ownership of r.
func (t *Table) Upsert(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	return t.upsertOwned(r.Clone())
}

// UpsertOwned is Upsert without the defensive copy: the table takes
// ownership and the caller must never mutate r afterwards.
func (t *Table) UpsertOwned(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	return t.upsertOwned(r)
}

func (t *Table) upsertOwned(r Row) error {
	k := t.keyOf(r)
	if old, ok := t.rows.Get(k); ok {
		t.replaceEntry(k, old, r)
		return nil
	}
	t.insertEntry(k, r)
	return nil
}

// Rows returns the rows in canonical (key-sorted) order. The slice is
// fresh, but its rows are shared references that must be treated as
// read-only; no row data is copied. Canonical order is intrinsic to the
// persistent storage (an in-order tree walk), so Rows and RowsCanonical
// coincide.
func (t *Table) Rows() []Row { return t.RowsCanonical() }

// RowsCanonical returns the rows sorted by primary key. The slice is
// fresh, but its rows are shared references that must be treated as
// read-only. The order falls out of the key-ordered storage — no sort,
// no cache to invalidate.
func (t *Table) RowsCanonical() []Row {
	return pmap.AppendMapped(t.rows, make([]Row, 0, t.rows.Len()), entryRow)
}

// Scan calls fn for each row in canonical key order (a shared reference:
// fn must not mutate it) until fn returns false or an error.
func (t *Table) Scan(fn func(Row) (bool, error)) error {
	var err error
	t.rows.Ascend(func(_ string, e *rowEntry) bool {
		cont, ferr := fn(e.row)
		if ferr != nil {
			err = ferr
			return false
		}
		return cont
	})
	return err
}

// Value returns the value of the named column for the row with key.
func (t *Table) Value(key Row, col string) (Value, error) {
	r, ok := t.Get(key)
	if !ok {
		return Value{}, fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		return Value{}, fmt.Errorf("%w: %s", ErrNoSuchColumn, col)
	}
	return r[ci], nil
}

// Clone returns an independent copy of the table in O(1): the persistent
// row storage and secondary indexes are shared by pointer, and either
// side's later mutations path-copy only what they touch — no unsharing
// step ever copies the whole relation.
func (t *Table) Clone() *Table {
	out := &Table{
		schema:    t.schema.Clone(),
		keyIdx:    t.keyIdx,
		rows:      t.rows,
		schemaSum: t.schemaSum,
	}
	// No hash state to copy: Merkle digests live on the shared tree
	// nodes and follow the rows pointer into the clone.
	// The secondary registry is now shared: neither side may mutate it
	// in place until it re-copies (secOwn). out.secOwned starts false.
	t.secOwned.Store(false)
	out.secondary.Store(t.secondary.Load())
	return out
}

// Equal reports whether two tables have equal schemas (modulo name) and
// identical row sets.
func (t *Table) Equal(o *Table) bool {
	if o == nil || !t.schema.Equal(o.schema) || t.rows.Len() != o.rows.Len() {
		return false
	}
	// Equal cached Merkle roots prove equal contents (the root is a
	// canonical commitment); nothing is hashed here — the fast path only
	// fires when both sides were hashed already.
	if ra, ok := t.rows.CachedRoot(); ok {
		if rb, ok2 := o.rows.CachedRoot(); ok2 && ra == rb {
			return true
		}
	}
	// Structural comparison when either side has no cached root yet, or
	// when the roots differ for encodings that nevertheless compare
	// equal (NaN payload bits). Pointer-equal subtrees short-circuit and
	// the walk aborts at the first difference, so comparing a snapshot
	// against a lightly edited descendant is O(changed rows) and an
	// unequal pair stops at its first divergence.
	equal := true
	stop := func(string, *rowEntry) bool { equal = false; return false }
	pmap.Diff(t.rows, o.rows, sameRowEntry, stop, stop,
		func(string, *rowEntry, *rowEntry) bool { equal = false; return false },
	)
	return equal
}

// sameRowEntry reports whether two stored entries carry the same row —
// pointer equality first (shared structure), content second.
func sameRowEntry(a, b *rowEntry) bool {
	return a == b || a.row.Equal(b.row)
}

// AppendCanonical appends a deterministic binary encoding of the schema
// and the key-sorted rows. The table *name* is deliberately excluded: the
// two replicas of a shared table carry different local names (the paper's
// D13 and D31) but must hash identically when their contents agree.
func (t *Table) AppendCanonical(dst []byte) []byte {
	dst = appendSchemaCanonical(dst, t.schema)
	t.rows.Ascend(func(_ string, e *rowEntry) bool {
		dst = e.row.AppendCanonical(dst)
		return true
	})
	return dst
}

// RowsRoot returns the Merkle root of the row tree: a canonical SHA-256
// commitment to the table's contents (equal contents ⇔ equal root,
// independent of mutation history, because the underlying treap's shape
// is a pure function of the key set). The empty table's root is the
// all-zero hash. Membership proofs produced by ProveRow verify against
// this root.
//
// The root is cached per tree node and shared structurally: the first
// call digests every row once, and after a k-row delta only the
// O(k log n) path-copied nodes are re-hashed — so the root update after
// a one-row edit costs O(log n) regardless of table size. Safe for
// concurrent readers of one shared snapshot (racing digest computations
// store identical values).
func (t *Table) RowsRoot() [32]byte {
	return t.rows.MerkleRoot(rowEntryLeaf)
}

// Hash returns a SHA-256 digest committing to the schema and the rows
// via the Merkle row root. Two tables with the same schema and contents
// hash identically — regardless of insertion order or table name —
// which is what the sharing layer uses to confirm that peers converged
// after an update; unlike the additive multiset hash it replaced, the
// Merkle construction is collision-resistant even against adversarially
// chosen rows and supports per-row membership proofs (ProveRow). Cost
// follows RowsRoot: O(n) once, O(k log n) after a k-row delta, nothing
// for tables that are never hashed.
func (t *Table) Hash() [32]byte {
	root := t.RowsRoot()
	var buf [72]byte
	copy(buf[:32], t.schemaSum[:])
	binary.BigEndian.PutUint64(buf[32:40], uint64(t.rows.Len()))
	copy(buf[40:], root[:])
	return sha256.Sum256(buf[:])
}

// CachedHash returns the table hash and true when the Merkle root is
// already cached, without forcing the O(n) first build. Callers that
// merely want to reuse a hash-keyed cache (the composed-lens
// intermediate view memo) use it so cold tables don't pay for hashing
// they never asked for.
func (t *Table) CachedHash() ([32]byte, bool) {
	if _, ok := t.rows.CachedRoot(); !ok {
		return [32]byte{}, false
	}
	return t.Hash(), true
}

// Secondary indexes: RowsByCols answers "which rows carry this value
// tuple in these columns" in O(group size · log n) instead of a table
// scan. The delta-aware lens pipeline uses it to address source rows by
// a re-keyed view key (the paper's D23/D32 shares, keyed on medication
// rather than patient). An index is built lazily by the first lookup
// over its column set — an O(n log n) build paid once — and maintained
// incrementally by every mutator afterwards, exactly like the hash
// state; Clone shares it structurally.

// secName canonically joins a column list into an index-registry key.
func secName(cols []string) string {
	var buf []byte
	for _, c := range cols {
		buf = append(buf, c...)
		buf = append(buf, 0)
	}
	return string(buf)
}

// secKey encodes the secondary-key tuple of a full row with the ordered
// encoding (the prefix of the index's composite keys).
func (ix *secIndex) secKey(r Row) string {
	var buf []byte
	for _, c := range ix.cols {
		buf = r[c].AppendOrdered(buf)
	}
	return string(buf)
}

// secOwn returns a secondary registry this instance may mutate in
// place, or nil when no indexes are built. The first mutation after a
// Clone copies the shared registry (map and secIndex wrappers — the
// persistent trees inside stay shared); every later mutation reuses the
// owned copy, so steady-state index maintenance allocates nothing
// beyond the trees' own path copies.
func (t *Table) secOwn() map[string]*secIndex {
	secs := t.secondary.Load()
	if secs == nil {
		return nil
	}
	if t.secOwned.Load() {
		return *secs
	}
	next := make(map[string]*secIndex, len(*secs))
	for name, ix := range *secs {
		next[name] = &secIndex{cols: ix.cols, entries: ix.entries}
	}
	t.secondary.Store(&next)
	t.secOwned.Store(true)
	return next
}

// secAdd registers a newly inserted row (pk is its ordered key encoding)
// with every built index.
func (t *Table) secAdd(r Row, pk string) {
	for _, ix := range t.secOwn() {
		ix.entries, _ = ix.entries.Set(ix.secKey(r)+pk, struct{}{})
	}
}

// secRemove unregisters a deleted row from every built index.
func (t *Table) secRemove(r Row, pk string) {
	for _, ix := range t.secOwn() {
		ix.entries, _ = ix.entries.Delete(ix.secKey(r) + pk)
	}
}

// secReplace re-registers a row whose non-key columns changed in place.
// The primary key (pk, ordered encoding) is unchanged by contract
// (replaceEntry), so only indexes whose secondary tuple actually changed
// move their entry.
func (t *Table) secReplace(old, new Row, pk string) {
	secs := t.secondary.Load()
	if secs == nil {
		return
	}
	changed := false
	for _, ix := range *secs {
		if ix.secKey(old) != ix.secKey(new) {
			changed = true
			break
		}
	}
	if !changed {
		return
	}
	for _, ix := range t.secOwn() {
		ko, kn := ix.secKey(old), ix.secKey(new)
		if ko == kn {
			continue
		}
		entries, _ := ix.entries.Delete(ko + pk)
		entries, _ = entries.Set(kn+pk, struct{}{})
		ix.entries = entries
	}
}

// secIndexFor returns (building and publishing if needed) the index over
// cols. Safe for concurrent readers sharing one snapshot; mutation is
// still single-writer by the Table contract.
func (t *Table) secIndexFor(cols []string) (*secIndex, error) {
	name := secName(cols)
	if secs := t.secondary.Load(); secs != nil {
		if ix, ok := (*secs)[name]; ok {
			return ix, nil
		}
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		ci := t.schema.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %s (indexing %s)", ErrNoSuchColumn, c, t.schema.Name)
		}
		idx[i] = ci
	}
	t.secMu.Lock()
	defer t.secMu.Unlock()
	if secs := t.secondary.Load(); secs != nil {
		if ix, ok := (*secs)[name]; ok {
			return ix, nil
		}
	}
	ix := &secIndex{cols: idx}
	t.rows.Ascend(func(pk string, e *rowEntry) bool {
		ix.entries, _ = ix.entries.Set(ix.secKey(e.row)+pk, struct{}{})
		return true
	})
	var next map[string]*secIndex
	if old := t.secondary.Load(); old != nil {
		next = make(map[string]*secIndex, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	} else {
		next = make(map[string]*secIndex, 1)
	}
	next[name] = ix
	// The lazy build may run on a snapshot shared by concurrent readers,
	// so the fresh registry is published unowned: the next mutator (a
	// single writer by contract) copies it before editing in place.
	t.secOwned.Store(false)
	t.secondary.Store(&next)
	return ix, nil
}

// EnsureIndex builds (if absent) the secondary index over cols without
// performing a lookup. Callers that are about to Clone and then query the
// clone prime the original first, so the index is shared into the clone
// (and from there into every later structurally shared descendant)
// instead of being rebuilt per clone.
func (t *Table) EnsureIndex(cols []string) error {
	_, err := t.secIndexFor(cols)
	return err
}

// RowsByCols returns every row whose values in cols equal key (given in
// the same order), sorted by primary key. The rows are shared references
// and must be treated as read-only. The first call over a column set
// walks the table once to build the index; later calls — and every call
// on tables derived from this one by Clone — are O(matching rows ·
// log n), with the index maintained incrementally across mutations.
func (t *Table) RowsByCols(cols []string, key Row) ([]Row, error) {
	if len(key) != len(cols) {
		// A partial key tuple would prefix-match composite index entries
		// mid-secondary-key and misread the leftover bytes as a primary
		// key; reject the arity mismatch explicitly.
		return nil, fmt.Errorf("%w: RowsByCols on %s wants %d key values, got %d", ErrSchemaInvalid, t.schema.Name, len(cols), len(key))
	}
	ix, err := t.secIndexFor(cols)
	if err != nil {
		return nil, err
	}
	var prefix []byte
	for _, v := range key {
		prefix = v.AppendOrdered(prefix)
	}
	var out []Row
	var ixErr error
	ix.entries.AscendPrefix(string(prefix), func(k string, _ struct{}) bool {
		e, ok := t.rows.Get(k[len(prefix):])
		if !ok {
			ixErr = fmt.Errorf("reldb: secondary index on %s out of sync (missing pk)", t.schema.Name)
			return false
		}
		out = append(out, e.row)
		return true
	})
	if ixErr != nil {
		return nil, ixErr
	}
	return out, nil
}

// PrioritySecret returns the secret keying the table's treap priorities
// (nil for an ordinary unkeyed table). Read-only; callers must not
// mutate it.
func (t *Table) PrioritySecret() []byte { return t.rows.Seed().Secret() }

// Reseeded returns a table with identical contents whose row-tree shape
// (and therefore Merkle root) is derived under keyed treap priorities —
// HMAC-SHA-256 of each storage key under secret — instead of the
// default unkeyed SHA-256. An empty secret returns to unkeyed
// priorities. When the table already carries the requested secret the
// receiver is returned unchanged (O(1), the steady state of the sharing
// layer's seed choke points); otherwise the tree is rebuilt in one O(n)
// pass that reuses every row entry and its cached row digest — only the
// interior nodes (and their subtree digests) are shape-specific.
//
// Replicas that must agree on shape — and hence on Table.Hash and on
// anti-entropy subtree digests — must be reseeded with the same secret;
// the sharing layer derives one per share. A party without the secret
// cannot grind row keys for priority patterns that deepen the tree.
func (t *Table) Reseeded(secret []byte) *Table {
	if t.rows.Seed().Matches(secret) {
		return t
	}
	// Stream the rows straight into a seeded transient: the in-order
	// walk is strictly ascending, so every insert takes the O(1) spine
	// path — no intermediate key/entry slices, and the row entries (with
	// their cached digests) are shared with the receiver.
	tr := pmap.NewTransient[*rowEntry](pmap.NewSeed(secret))
	t.rows.Ascend(func(k string, e *rowEntry) bool {
		tr.Insert(k, e)
		return true
	})
	out := &Table{
		schema:    t.schema.Clone(),
		keyIdx:    t.keyIdx,
		rows:      tr.Freeze(),
		schemaSum: t.schemaSum,
	}
	// Secondary indexes are shape-independent content; share them like
	// Clone does (unowned on both sides until the next mutation).
	t.secOwned.Store(false)
	out.secondary.Store(t.secondary.Load())
	return out
}

// Renamed returns a copy of the table under a different name (O(1), like
// Clone). Peers use it to store an incoming shared payload under their
// local view name.
func (t *Table) Renamed(name string) *Table {
	out := t.Clone()
	out.schema.Name = name
	return out
}

// String renders a compact single-line description for logs.
func (t *Table) String() string {
	return fmt.Sprintf("table %s (%d cols, %d rows)", t.schema.Name, len(t.schema.Columns), t.rows.Len())
}
