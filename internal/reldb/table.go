package reldb

import (
	"crypto/sha256"
	"fmt"
	"sort"
)

// Table is an in-memory relation: a schema plus rows indexed by primary
// key. Rows are kept in insertion order; canonical (key-sorted) order is
// used for hashing and equality so two tables with the same contents are
// identical regardless of mutation history.
//
// Table is not safe for concurrent use; Database serializes access.
type Table struct {
	schema Schema
	rows   []Row
	// index maps canonical key encodings to positions in rows.
	index map[string]int
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &Table{
		schema: schema.Clone(),
		index:  make(map[string]int),
	}, nil
}

// MustNewTable is NewTable that panics on invalid schemas; intended for
// statically known schemas in tests and examples.
func MustNewTable(schema Schema) *Table {
	t, err := NewTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema.Clone() }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// keyOf extracts the canonical key encoding from a full row.
func (t *Table) keyOf(r Row) string {
	var buf []byte
	for _, i := range t.schema.KeyIndexes() {
		buf = r[i].AppendCanonical(buf)
	}
	return string(buf)
}

// KeyValues extracts the primary-key values from a full row, in key order.
func (t *Table) KeyValues(r Row) Row {
	idx := t.schema.KeyIndexes()
	out := make(Row, len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}

// encodeKey canonically encodes a key tuple (values in key order).
func encodeKey(key Row) string {
	var buf []byte
	for _, v := range key {
		buf = v.AppendCanonical(buf)
	}
	return string(buf)
}

// Insert adds a row. It fails if the row violates the schema or duplicates
// an existing key. The row is cloned; the caller keeps ownership of r.
func (t *Table) Insert(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	k := t.keyOf(r)
	if _, dup := t.index[k]; dup {
		return fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.schema.Name, t.KeyValues(r))
	}
	t.index[k] = len(t.rows)
	t.rows = append(t.rows, r.Clone())
	return nil
}

// MustInsert is Insert that panics on error; for tests and fixtures.
func (t *Table) MustInsert(r Row) {
	if err := t.Insert(r); err != nil {
		panic(err)
	}
}

// Get returns a copy of the row with the given key tuple.
func (t *Table) Get(key Row) (Row, bool) {
	i, ok := t.index[encodeKey(key)]
	if !ok {
		return nil, false
	}
	return t.rows[i].Clone(), true
}

// Has reports whether a row with the given key tuple exists.
func (t *Table) Has(key Row) bool {
	_, ok := t.index[encodeKey(key)]
	return ok
}

// Update modifies the non-key columns named in set for the row with the
// given key. Attempting to set a key column is an error (delete and
// re-insert instead, which models the relational view of key changes).
func (t *Table) Update(key Row, set map[string]Value) error {
	i, ok := t.index[encodeKey(key)]
	if !ok {
		return fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	updated := t.rows[i].Clone()
	for col, v := range set {
		ci := t.schema.ColumnIndex(col)
		if ci < 0 {
			return fmt.Errorf("%w: %s (updating %s)", ErrNoSuchColumn, col, t.schema.Name)
		}
		if t.schema.IsKeyColumn(col) {
			return fmt.Errorf("%w: table %s column %s", ErrKeyImmutable, t.schema.Name, col)
		}
		updated[ci] = v
	}
	if err := t.schema.checkRow(updated); err != nil {
		return err
	}
	t.rows[i] = updated
	return nil
}

// UpdateWhere applies set to every row matching pred and reports how many
// rows changed.
func (t *Table) UpdateWhere(pred Predicate, set map[string]Value) (int, error) {
	n := 0
	for _, r := range t.Rows() {
		ok, err := pred.Eval(t.schema, r)
		if err != nil {
			return n, err
		}
		if !ok {
			continue
		}
		if err := t.Update(t.KeyValues(r), set); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Delete removes the row with the given key tuple.
func (t *Table) Delete(key Row) error {
	ks := encodeKey(key)
	i, ok := t.index[ks]
	if !ok {
		return fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	last := len(t.rows) - 1
	if i != last {
		t.rows[i] = t.rows[last]
		t.index[t.keyOf(t.rows[i])] = i
	}
	t.rows = t.rows[:last]
	delete(t.index, ks)
	return nil
}

// DeleteWhere removes every row matching pred and reports how many were
// removed.
func (t *Table) DeleteWhere(pred Predicate) (int, error) {
	n := 0
	for _, r := range t.Rows() {
		ok, err := pred.Eval(t.schema, r)
		if err != nil {
			return n, err
		}
		if ok {
			if err := t.Delete(t.KeyValues(r)); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// Upsert inserts the row, or replaces the existing row with the same key.
func (t *Table) Upsert(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	k := t.keyOf(r)
	if i, ok := t.index[k]; ok {
		t.rows[i] = r.Clone()
		return nil
	}
	t.index[k] = len(t.rows)
	t.rows = append(t.rows, r.Clone())
	return nil
}

// Rows returns copies of all rows in insertion order.
func (t *Table) Rows() []Row {
	out := make([]Row, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.Clone()
	}
	return out
}

// RowsCanonical returns copies of all rows sorted by primary key.
func (t *Table) RowsCanonical() []Row {
	out := t.Rows()
	idx := t.schema.KeyIndexes()
	sort.Slice(out, func(a, b int) bool {
		for _, i := range idx {
			if c := out[a][i].Compare(out[b][i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Scan calls fn for each row (a shared reference: fn must not mutate it)
// until fn returns false or an error.
func (t *Table) Scan(fn func(Row) (bool, error)) error {
	for _, r := range t.rows {
		cont, err := fn(r)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// Value returns the value of the named column for the row with key.
func (t *Table) Value(key Row, col string) (Value, error) {
	r, ok := t.Get(key)
	if !ok {
		return Value{}, fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		return Value{}, fmt.Errorf("%w: %s", ErrNoSuchColumn, col)
	}
	return r[ci], nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{
		schema: t.schema.Clone(),
		rows:   make([]Row, len(t.rows)),
		index:  make(map[string]int, len(t.index)),
	}
	for i, r := range t.rows {
		out.rows[i] = r.Clone()
	}
	for k, v := range t.index {
		out.index[k] = v
	}
	return out
}

// Equal reports whether two tables have equal schemas (modulo name) and
// identical row sets.
func (t *Table) Equal(o *Table) bool {
	if o == nil || !t.schema.Equal(o.schema) || len(t.rows) != len(o.rows) {
		return false
	}
	a, b := t.RowsCanonical(), o.RowsCanonical()
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// AppendCanonical appends a deterministic binary encoding of the schema
// and the key-sorted rows. The table *name* is deliberately excluded: the
// two replicas of a shared table carry different local names (the paper's
// D13 and D31) but must hash identically when their contents agree.
func (t *Table) AppendCanonical(dst []byte) []byte {
	for _, c := range t.schema.Columns {
		dst = append(dst, []byte(c.Name)...)
		dst = append(dst, 0, byte(c.Type))
		if c.Nullable {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	dst = append(dst, 0)
	for _, k := range t.schema.Key {
		dst = append(dst, []byte(k)...)
		dst = append(dst, 0)
	}
	dst = append(dst, 0)
	for _, r := range t.RowsCanonical() {
		dst = r.AppendCanonical(dst)
	}
	return dst
}

// Hash returns a SHA-256 digest of the canonical encoding. Two tables with
// the same schema and contents hash identically, which is what the
// sharing-layer uses to confirm that peers converged after an update.
func (t *Table) Hash() [32]byte {
	return sha256.Sum256(t.AppendCanonical(nil))
}

// Renamed returns a deep copy of the table under a different name. Peers
// use it to store an incoming shared payload under their local view name.
func (t *Table) Renamed(name string) *Table {
	out := t.Clone()
	out.schema.Name = name
	return out
}

// String renders a compact single-line description for logs.
func (t *Table) String() string {
	return fmt.Sprintf("table %s (%d cols, %d rows)", t.schema.Name, len(t.schema.Columns), len(t.rows))
}
