package reldb

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Table is an in-memory relation: a schema plus rows indexed by primary
// key. Rows are kept in insertion order; canonical (key-sorted) order is
// cached and used for encoding and equality so two tables with the same
// contents behave identically regardless of mutation history.
//
// Storage is copy-on-write: Clone shares the row storage with the
// original and either side copies it lazily on its first mutation, so
// snapshots are O(1) in row data. Rows are immutable once inside a table —
// accessors (Rows, RowsCanonical, Get, Scan) return shared references that
// callers must treat as read-only; all mutation goes through Insert /
// Update / Upsert / Delete, which replace whole rows.
//
// Table is not safe for concurrent mutation; Database serializes access.
type Table struct {
	schema Schema
	// keyIdx caches schema.KeyIndexes(); the schema is immutable after
	// construction (Renamed changes only the name).
	keyIdx []int
	rows []Row
	// index maps canonical key encodings to positions in rows.
	index map[string]int
	// Incremental hash state, built lazily by the first Hash() call and
	// maintained incrementally afterwards, so tables that are never
	// hashed (derived views, intermediates) pay nothing. digests is
	// parallel to rows: digests[i] is the canonical SHA-256 digest of
	// rows[i]. sum is the additive multiset combination of all row
	// digests; see Hash for the construction. hashed gates both; hashMu
	// serializes the lazy build between concurrent readers.
	digests [][32]byte
	sum     tableSum
	hashed  atomic.Bool
	hashMu  sync.Mutex
	// schemaSum digests the canonical schema encoding (name excluded).
	schemaSum [32]byte
	// canon caches the canonical (key-sorted) row order as positions into
	// rows; nil means it must be recomputed. Atomic because the cache is
	// filled in by read-only calls, which may run concurrently on a shared
	// snapshot (e.g. two fetch handlers diffing the same retained view).
	canon atomic.Pointer[[]int]
	// cow marks the row storage as shared with at least one clone; any
	// mutator copies it first. Atomic so concurrent snapshots race-freely
	// mark a live table as shared.
	cow atomic.Bool
	// secondary points to the current set of secondary indexes, keyed by
	// the joined column names. Built lazily by the first RowsByCols call
	// over a column set (read-only callers may share one snapshot, so
	// builds publish copy-on-write under secMu) and maintained
	// incrementally by every mutator afterwards, like the hash state.
	secondary atomic.Pointer[map[string]*secIndex]
	secMu     sync.Mutex
}

// secIndex maps a canonical encoding of a non-key column tuple to the
// primary-key encodings of every row carrying that tuple. Primary keys —
// not row positions — are stored so delete's swap-with-last never
// invalidates the index.
type secIndex struct {
	cols []int // column positions forming the secondary key
	m    map[string][]string
}

// tableSum is a 256-bit little-endian accumulator. Row digests are added
// on insert and subtracted on delete (mod 2^256), giving an
// order-independent multiset hash that costs O(1) per row change.
type tableSum [4]uint64

func (s *tableSum) add(d [32]byte) {
	var c uint64
	for i := 0; i < 4; i++ {
		s[i], c = bits.Add64(s[i], binary.LittleEndian.Uint64(d[i*8:]), c)
	}
}

func (s *tableSum) sub(d [32]byte) {
	var b uint64
	for i := 0; i < 4; i++ {
		s[i], b = bits.Sub64(s[i], binary.LittleEndian.Uint64(d[i*8:]), b)
	}
}

// rowDigest hashes a row's canonical encoding.
func rowDigest(r Row) [32]byte {
	var buf [192]byte
	return sha256.Sum256(r.AppendCanonical(buf[:0]))
}

// appendSchemaCanonical appends the deterministic schema encoding (columns
// and key; the table name is deliberately excluded — see AppendCanonical).
func appendSchemaCanonical(dst []byte, s Schema) []byte {
	for _, c := range s.Columns {
		dst = append(dst, []byte(c.Name)...)
		dst = append(dst, 0, byte(c.Type))
		if c.Nullable {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	dst = append(dst, 0)
	for _, k := range s.Key {
		dst = append(dst, []byte(k)...)
		dst = append(dst, 0)
	}
	dst = append(dst, 0)
	return dst
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	sc := schema.Clone()
	var buf [256]byte
	return &Table{
		schema:    sc,
		keyIdx:    sc.KeyIndexes(),
		index:     make(map[string]int),
		schemaSum: sha256.Sum256(appendSchemaCanonical(buf[:0], sc)),
	}, nil
}

// MustNewTable is NewTable that panics on invalid schemas; intended for
// statically known schemas in tests and examples.
func MustNewTable(schema Schema) *Table {
	t, err := NewTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema.Clone() }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// materialize unshares the row storage before a mutation. Positions are
// preserved, so indexes held across the call stay valid.
func (t *Table) materialize() {
	if !t.cow.Load() {
		return
	}
	rows := make([]Row, len(t.rows))
	copy(rows, t.rows)
	t.rows = rows
	if t.hashed.Load() {
		digests := make([][32]byte, len(t.digests))
		copy(digests, t.digests)
		t.digests = digests
	}
	index := make(map[string]int, len(t.index))
	for k, v := range t.index {
		index[k] = v
	}
	t.index = index
	if secs := t.secondary.Load(); secs != nil {
		next := make(map[string]*secIndex, len(*secs))
		for name, ix := range *secs {
			m := make(map[string][]string, len(ix.m))
			for k, pks := range ix.m {
				m[k] = append([]string(nil), pks...)
			}
			next[name] = &secIndex{cols: ix.cols, m: m}
		}
		t.secondary.Store(&next)
	}
	t.cow.Store(false)
}

// Grow unshares the storage and preallocates capacity for n more rows,
// including the key index.
func (t *Table) Grow(n int) {
	t.materialize()
	if cap(t.rows)-len(t.rows) >= n {
		return
	}
	rows := make([]Row, len(t.rows), len(t.rows)+n)
	copy(rows, t.rows)
	t.rows = rows
	if t.hashed.Load() {
		digests := make([][32]byte, len(t.digests), len(t.digests)+n)
		copy(digests, t.digests)
		t.digests = digests
	}
	index := make(map[string]int, len(t.index)+n)
	for k, v := range t.index {
		index[k] = v
	}
	t.index = index
}

// keyOf extracts the canonical key encoding from a full row.
func (t *Table) keyOf(r Row) string {
	var buf []byte
	for _, i := range t.keyIdx {
		buf = r[i].AppendCanonical(buf)
	}
	return string(buf)
}

// KeyValues extracts the primary-key values from a full row, in key order.
func (t *Table) KeyValues(r Row) Row {
	out := make(Row, len(t.keyIdx))
	for i, j := range t.keyIdx {
		out[i] = r[j]
	}
	return out
}

// AppendKeyOf appends the canonical key encoding of a full row to dst,
// the same encoding GetKeyBytes looks up. Hot paths use it to probe the
// index without materializing a key tuple.
func (t *Table) AppendKeyOf(dst []byte, r Row) []byte {
	for _, i := range t.keyIdx {
		dst = r[i].AppendCanonical(dst)
	}
	return dst
}

// encodeKey canonically encodes a key tuple (values in key order).
func encodeKey(key Row) string {
	var buf []byte
	for _, v := range key {
		buf = v.AppendCanonical(buf)
	}
	return string(buf)
}

// Insert adds a row. It fails if the row violates the schema or duplicates
// an existing key. The row is cloned; the caller keeps ownership of r.
func (t *Table) Insert(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	return t.insertOwned(r.Clone())
}

// InsertOwned adds a row without copying it: the table takes ownership,
// and the caller must never mutate r afterwards. It is the allocation-free
// insert for code that constructs rows it will not reuse (lens puts,
// relational operators, changeset application).
func (t *Table) InsertOwned(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	return t.insertOwned(r)
}

func (t *Table) insertOwned(r Row) error {
	k := t.keyOf(r)
	if _, dup := t.index[k]; dup {
		return fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.schema.Name, t.KeyValues(r))
	}
	t.materialize()
	t.index[k] = len(t.rows)
	t.rows = append(t.rows, r)
	if t.hashed.Load() {
		d := rowDigest(r)
		t.digests = append(t.digests, d)
		t.sum.add(d)
	}
	t.secAdd(r, k)
	t.canon.Store(nil)
	return nil
}

// MustInsert is Insert that panics on error; for tests and fixtures.
func (t *Table) MustInsert(r Row) {
	if err := t.Insert(r); err != nil {
		panic(err)
	}
}

// Get returns the row with the given key tuple. The row is a shared
// reference and must be treated as read-only.
func (t *Table) Get(key Row) (Row, bool) {
	i, ok := t.index[encodeKey(key)]
	if !ok {
		return nil, false
	}
	return t.rows[i], true
}

// GetKeyBytes returns the row whose canonical key encoding equals k (as
// produced by AppendKeyOf or Value.AppendCanonical over the key tuple).
// The row is a shared reference and must be treated as read-only.
func (t *Table) GetKeyBytes(k []byte) (Row, bool) {
	i, ok := t.index[string(k)]
	if !ok {
		return nil, false
	}
	return t.rows[i], true
}

// Has reports whether a row with the given key tuple exists.
func (t *Table) Has(key Row) bool {
	_, ok := t.index[encodeKey(key)]
	return ok
}

// replaceAt swaps the row at position i for an owned replacement with the
// same key, updating the digest sum. The canonical order stays valid
// because neither position nor key changes.
func (t *Table) replaceAt(i int, r Row) {
	t.materialize()
	if t.hashed.Load() {
		d := rowDigest(r)
		t.sum.sub(t.digests[i])
		t.sum.add(d)
		t.digests[i] = d
	}
	t.secReplace(t.rows[i], r)
	t.rows[i] = r
}

// Update modifies the non-key columns named in set for the row with the
// given key. Attempting to set a key column is an error (delete and
// re-insert instead, which models the relational view of key changes).
func (t *Table) Update(key Row, set map[string]Value) error {
	i, ok := t.index[encodeKey(key)]
	if !ok {
		return fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	updated := t.rows[i].Clone()
	for col, v := range set {
		ci := t.schema.ColumnIndex(col)
		if ci < 0 {
			return fmt.Errorf("%w: %s (updating %s)", ErrNoSuchColumn, col, t.schema.Name)
		}
		if t.schema.IsKeyColumn(col) {
			return fmt.Errorf("%w: table %s column %s", ErrKeyImmutable, t.schema.Name, col)
		}
		updated[ci] = v
	}
	if err := t.schema.checkRow(updated); err != nil {
		return err
	}
	t.replaceAt(i, updated)
	return nil
}

// UpdateWhere applies set to every row matching pred and reports how many
// rows changed.
func (t *Table) UpdateWhere(pred Predicate, set map[string]Value) (int, error) {
	n := 0
	for _, r := range t.Rows() {
		ok, err := pred.Eval(t.schema, r)
		if err != nil {
			return n, err
		}
		if !ok {
			continue
		}
		if err := t.Update(t.KeyValues(r), set); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Delete removes the row with the given key tuple.
func (t *Table) Delete(key Row) error {
	ks := encodeKey(key)
	i, ok := t.index[ks]
	if !ok {
		return fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	t.materialize()
	hashed := t.hashed.Load()
	if hashed {
		t.sum.sub(t.digests[i])
	}
	t.secRemove(t.rows[i], ks)
	last := len(t.rows) - 1
	if i != last {
		t.rows[i] = t.rows[last]
		t.index[t.keyOf(t.rows[i])] = i
		if hashed {
			t.digests[i] = t.digests[last]
		}
	}
	t.rows[last] = nil
	t.rows = t.rows[:last]
	if hashed {
		t.digests = t.digests[:last]
	}
	delete(t.index, ks)
	t.canon.Store(nil)
	return nil
}

// DeleteWhere removes every row matching pred and reports how many were
// removed.
func (t *Table) DeleteWhere(pred Predicate) (int, error) {
	n := 0
	for _, r := range t.Rows() {
		ok, err := pred.Eval(t.schema, r)
		if err != nil {
			return n, err
		}
		if ok {
			if err := t.Delete(t.KeyValues(r)); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// Upsert inserts the row, or replaces the existing row with the same key.
// The row is cloned; the caller keeps ownership of r.
func (t *Table) Upsert(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	return t.upsertOwned(r.Clone())
}

// UpsertOwned is Upsert without the defensive copy: the table takes
// ownership and the caller must never mutate r afterwards.
func (t *Table) UpsertOwned(r Row) error {
	if err := t.schema.checkRow(r); err != nil {
		return err
	}
	return t.upsertOwned(r)
}

func (t *Table) upsertOwned(r Row) error {
	k := t.keyOf(r)
	if i, ok := t.index[k]; ok {
		t.replaceAt(i, r)
		return nil
	}
	return t.insertOwned(r)
}

// Rows returns the rows in insertion order. The slice is fresh, but its
// rows are shared references that must be treated as read-only; no row
// data is copied.
func (t *Table) Rows() []Row {
	out := make([]Row, len(t.rows))
	copy(out, t.rows)
	return out
}

// canonOrder returns (computing and caching if needed) the row positions
// in canonical key order.
func (t *Table) canonOrder() []int {
	if p := t.canon.Load(); p != nil {
		return *p
	}
	ord := make([]int, len(t.rows))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ra, rb := t.rows[ord[a]], t.rows[ord[b]]
		for _, i := range t.keyIdx {
			if c := ra[i].Compare(rb[i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	t.canon.Store(&ord)
	return ord
}

// RowsCanonical returns the rows sorted by primary key. The slice is
// fresh, but its rows are shared references that must be treated as
// read-only. The sorted order is cached and reused until the next
// structural mutation.
func (t *Table) RowsCanonical() []Row {
	ord := t.canonOrder()
	out := make([]Row, len(ord))
	for i, j := range ord {
		out[i] = t.rows[j]
	}
	return out
}

// Scan calls fn for each row (a shared reference: fn must not mutate it)
// until fn returns false or an error.
func (t *Table) Scan(fn func(Row) (bool, error)) error {
	for _, r := range t.rows {
		cont, err := fn(r)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// Value returns the value of the named column for the row with key.
func (t *Table) Value(key Row, col string) (Value, error) {
	r, ok := t.Get(key)
	if !ok {
		return Value{}, fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		return Value{}, fmt.Errorf("%w: %s", ErrNoSuchColumn, col)
	}
	return r[ci], nil
}

// Clone returns an independent copy of the table in O(1) row data: the
// storage is shared copy-on-write and unshared by whichever side mutates
// first.
func (t *Table) Clone() *Table {
	out := &Table{
		schema:    t.schema.Clone(),
		keyIdx:    t.keyIdx,
		rows:      t.rows,
		index:     t.index,
		schemaSum: t.schemaSum,
	}
	// Snapshot the hash state under the lock so a concurrent lazy build
	// (another reader hashing this table) cannot be observed half-done.
	t.hashMu.Lock()
	if t.hashed.Load() {
		out.digests = t.digests
		out.sum = t.sum
		out.hashed.Store(true)
	}
	t.hashMu.Unlock()
	out.canon.Store(t.canon.Load())
	out.secondary.Store(t.secondary.Load())
	out.cow.Store(true)
	t.cow.Store(true)
	return out
}

// Equal reports whether two tables have equal schemas (modulo name) and
// identical row sets.
func (t *Table) Equal(o *Table) bool {
	if o == nil || !t.schema.Equal(o.schema) || len(t.rows) != len(o.rows) {
		return false
	}
	if t.hashed.Load() && o.hashed.Load() && t.sum == o.sum {
		return true
	}
	// Structural comparison when either side has no hash state yet, or
	// when the digest sums differ for encodings that nevertheless compare
	// equal (NaN payload bits).
	a, b := t.RowsCanonical(), o.RowsCanonical()
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// AppendCanonical appends a deterministic binary encoding of the schema
// and the key-sorted rows. The table *name* is deliberately excluded: the
// two replicas of a shared table carry different local names (the paper's
// D13 and D31) but must hash identically when their contents agree.
func (t *Table) AppendCanonical(dst []byte) []byte {
	dst = appendSchemaCanonical(dst, t.schema)
	for _, r := range t.RowsCanonical() {
		dst = r.AppendCanonical(dst)
	}
	return dst
}

// Hash returns a SHA-256 digest committing to the schema and the multiset
// of rows. Two tables with the same schema and contents hash identically —
// regardless of insertion order or table name — which is what the
// sharing layer uses to confirm that peers converged after an update.
//
// The digest is maintained incrementally: the first Hash call digests
// every row once, and from then on each row's canonical SHA-256 digest is
// added to (on insert) or subtracted from (on delete) a 256-bit
// accumulator — so Hash costs O(k) after a k-row update instead of
// re-encoding the whole relation, and tables that are never hashed pay
// nothing. The construction is an AdHash-style multiset hash; see
// PERFORMANCE.md for its guarantees and limits.
func (t *Table) Hash() [32]byte {
	t.ensureHashed()
	var buf [72]byte
	copy(buf[:32], t.schemaSum[:])
	binary.BigEndian.PutUint64(buf[32:40], uint64(len(t.rows)))
	for i, limb := range t.sum {
		binary.LittleEndian.PutUint64(buf[40+8*i:], limb)
	}
	return sha256.Sum256(buf[:])
}

// CachedHash returns the table hash and true when the incremental hash
// state is already built, without forcing the O(n) first build. Callers
// that merely want to reuse a hash-keyed cache (the composed-lens
// intermediate view memo) use it so cold tables don't pay for hashing
// they never asked for.
func (t *Table) CachedHash() ([32]byte, bool) {
	if !t.hashed.Load() {
		return [32]byte{}, false
	}
	return t.Hash(), true
}

// ensureHashed builds the per-row digest cache and its additive sum on
// first use. Safe to call from concurrent readers sharing one snapshot;
// mutation is still single-writer by the Table contract.
func (t *Table) ensureHashed() {
	if t.hashed.Load() {
		return
	}
	t.hashMu.Lock()
	defer t.hashMu.Unlock()
	if t.hashed.Load() {
		return
	}
	digests := make([][32]byte, len(t.rows))
	var sum tableSum
	for i, r := range t.rows {
		digests[i] = rowDigest(r)
		sum.add(digests[i])
	}
	t.digests = digests
	t.sum = sum
	t.hashed.Store(true)
}

// Secondary indexes: RowsByCols answers "which rows carry this value
// tuple in these columns" in O(group size) instead of a table scan. The
// delta-aware lens pipeline uses it to address source rows by a re-keyed
// view key (the paper's D23/D32 shares, keyed on medication rather than
// patient). An index is built lazily by the first lookup over its column
// set — an O(n) scan paid once — and maintained incrementally by every
// mutator afterwards, exactly like the hash state; Clone shares it
// copy-on-write.

// secName canonically joins a column list into an index key.
func secName(cols []string) string {
	var buf []byte
	for _, c := range cols {
		buf = append(buf, c...)
		buf = append(buf, 0)
	}
	return string(buf)
}

// secKey encodes the secondary-key tuple of a full row.
func (ix *secIndex) secKey(r Row) string {
	var buf []byte
	for _, c := range ix.cols {
		buf = r[c].AppendCanonical(buf)
	}
	return string(buf)
}

// secAdd registers a newly inserted row (pk is its canonical key
// encoding) with every built index.
func (t *Table) secAdd(r Row, pk string) {
	secs := t.secondary.Load()
	if secs == nil {
		return
	}
	for _, ix := range *secs {
		k := ix.secKey(r)
		ix.m[k] = append(ix.m[k], pk)
	}
}

// secRemove unregisters a deleted row from every built index.
func (t *Table) secRemove(r Row, pk string) {
	secs := t.secondary.Load()
	if secs == nil {
		return
	}
	for _, ix := range *secs {
		ix.remove(ix.secKey(r), pk)
	}
}

// secReplace re-registers a row whose non-key columns changed in place.
// The primary key is unchanged by contract (replaceAt), so only indexes
// whose secondary tuple actually changed move the entry.
func (t *Table) secReplace(old, new Row) {
	secs := t.secondary.Load()
	if secs == nil {
		return
	}
	var pk string
	for _, ix := range *secs {
		ko, kn := ix.secKey(old), ix.secKey(new)
		if ko == kn {
			continue
		}
		if pk == "" {
			pk = t.keyOf(new)
		}
		ix.remove(ko, pk)
		ix.m[kn] = append(ix.m[kn], pk)
	}
}

func (ix *secIndex) remove(key, pk string) {
	pks := ix.m[key]
	for i, p := range pks {
		if p == pk {
			pks[i] = pks[len(pks)-1]
			pks = pks[:len(pks)-1]
			break
		}
	}
	if len(pks) == 0 {
		delete(ix.m, key)
	} else {
		ix.m[key] = pks
	}
}

// secIndexFor returns (building and publishing if needed) the index over
// cols. Safe for concurrent readers sharing one snapshot; mutation is
// still single-writer by the Table contract.
func (t *Table) secIndexFor(cols []string) (*secIndex, error) {
	name := secName(cols)
	if secs := t.secondary.Load(); secs != nil {
		if ix, ok := (*secs)[name]; ok {
			return ix, nil
		}
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		ci := t.schema.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %s (indexing %s)", ErrNoSuchColumn, c, t.schema.Name)
		}
		idx[i] = ci
	}
	t.secMu.Lock()
	defer t.secMu.Unlock()
	if secs := t.secondary.Load(); secs != nil {
		if ix, ok := (*secs)[name]; ok {
			return ix, nil
		}
	}
	ix := &secIndex{cols: idx, m: make(map[string][]string)}
	var keyBuf []byte
	for _, r := range t.rows {
		k := ix.secKey(r)
		keyBuf = t.AppendKeyOf(keyBuf[:0], r)
		ix.m[k] = append(ix.m[k], string(keyBuf))
	}
	var next map[string]*secIndex
	if old := t.secondary.Load(); old != nil {
		next = make(map[string]*secIndex, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	} else {
		next = make(map[string]*secIndex, 1)
	}
	next[name] = ix
	t.secondary.Store(&next)
	return ix, nil
}

// EnsureIndex builds (if absent) the secondary index over cols without
// performing a lookup. Callers that are about to Clone and then query the
// clone prime the original first, so the index is shared into the clone
// (and from there into every later copy-on-write descendant) instead of
// being rebuilt per clone.
func (t *Table) EnsureIndex(cols []string) error {
	_, err := t.secIndexFor(cols)
	return err
}

// RowsByCols returns every row whose values in cols equal key (given in
// the same order), sorted by primary key. The rows are shared references
// and must be treated as read-only. The first call over a column set
// scans the table once to build the index; later calls — and every call
// on tables derived from this one by Clone — are O(matching rows), with
// the index maintained incrementally across mutations.
func (t *Table) RowsByCols(cols []string, key Row) ([]Row, error) {
	ix, err := t.secIndexFor(cols)
	if err != nil {
		return nil, err
	}
	var buf []byte
	for _, v := range key {
		buf = v.AppendCanonical(buf)
	}
	pks := ix.m[string(buf)]
	if len(pks) == 0 {
		return nil, nil
	}
	// Sort the group's primary-key encodings so the result order is
	// deterministic regardless of insertion history.
	sorted := append([]string(nil), pks...)
	sort.Strings(sorted)
	out := make([]Row, 0, len(sorted))
	for _, pk := range sorted {
		i, ok := t.index[pk]
		if !ok {
			return nil, fmt.Errorf("reldb: secondary index on %s out of sync (missing pk)", t.schema.Name)
		}
		out = append(out, t.rows[i])
	}
	return out, nil
}

// Renamed returns a copy of the table under a different name (O(1) row
// data, like Clone). Peers use it to store an incoming shared payload
// under their local view name.
func (t *Table) Renamed(name string) *Table {
	out := t.Clone()
	out.schema.Name = name
	return out
}

// String renders a compact single-line description for logs.
func (t *Table) String() string {
	return fmt.Sprintf("table %s (%d cols, %d rows)", t.schema.Name, len(t.schema.Columns), len(t.rows))
}
