package reldb

import (
	"fmt"

	"medshare/internal/merkle"
	"medshare/internal/reldb/pmap"
)

// The Merkle face of a table: membership proofs against RowsRoot, and
// the structural accessors the anti-entropy sync protocol is built on.
// Everything here rides on the row tree's canonical shape — two tables
// with equal contents have byte-identical trees, so subtree digests are
// comparable across independently built replicas.

// ProveRow builds a membership proof for the row with the given primary
// key tuple. The proof verifies against RowsRoot (VerifyRowProof); the
// proven row is returned alongside so callers can ship both.
func (t *Table) ProveRow(key Row) (Row, pmap.Proof, error) {
	k := encodeKey(key)
	e, ok := t.rows.Get(k)
	if !ok {
		return nil, pmap.Proof{}, fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	p, ok := t.rows.Prove(k, rowEntryLeaf)
	if !ok {
		return nil, pmap.Proof{}, fmt.Errorf("%w: table %s key %v", ErrKeyNotFound, t.schema.Name, key)
	}
	return e.row, p, nil
}

// VerifyRowProof checks that row is committed to by the row-tree root
// according to the proof. The row's canonical encoding is hashed as a
// domain-separated Merkle leaf, so an interior-node digest can never be
// passed off as a row (and vice versa).
func VerifyRowProof(rowsRoot [32]byte, row Row, p pmap.Proof) bool {
	var buf [192]byte
	return pmap.VerifyProof(rowsRoot, merkle.HashLeaf(row.AppendCanonical(buf[:0])), p)
}

// MerkleChild summarizes one child subtree of a row-tree node for the
// sync protocol: the storage key of the child's root row, the subtree
// digest, and the entry count. A nil *MerkleChild means an empty child.
type MerkleChild struct {
	Key    []byte
	Digest [32]byte
	Size   int
}

// MerkleNode describes one node of the row tree: the row it stores (a
// shared reference — read-only) plus both child summaries. The sync
// provider serves these to a peer walking its tree top-down.
type MerkleNode struct {
	Key         []byte
	Row         Row
	Left, Right *MerkleChild
}

func childOf(c pmap.ChildRef) *MerkleChild {
	if c.Size == 0 {
		return nil
	}
	return &MerkleChild{Key: []byte(c.Key), Digest: c.Digest, Size: c.Size}
}

// MerkleNodeAt returns the row-tree node whose row is stored under the
// given storage key encoding; a nil or empty key selects the root. ok is
// false when the key is absent (or the table is empty).
func (t *Table) MerkleNodeAt(key []byte) (MerkleNode, bool) {
	k := string(key)
	if len(key) == 0 {
		rk, ok := t.rows.RootKey()
		if !ok {
			return MerkleNode{}, false
		}
		k = rk
	}
	sum, e, ok := t.rows.SummaryAt(k, rowEntryLeaf)
	if !ok {
		return MerkleNode{}, false
	}
	return MerkleNode{
		Key:   []byte(sum.Key),
		Row:   e.row,
		Left:  childOf(sum.Left),
		Right: childOf(sum.Right),
	}, true
}

// SubtreeRows returns, in canonical order, the rows of the subtree
// rooted at the node stored under the given storage key. The rows are
// shared references and must be treated as read-only. ok is false when
// the key is absent.
func (t *Table) SubtreeRows(key []byte) ([]Row, bool) {
	var out []Row
	ok := t.rows.AscendSubtree(string(key), func(_ string, e *rowEntry) bool {
		out = append(out, e.row)
		return true
	})
	return out, ok
}

// MerkleIndex indexes every subtree digest of a table snapshot; the
// anti-entropy receiver uses it to recognize remote subtrees it already
// holds. Building it forces the digest cache (O(n) hashing the first
// time, shared with every snapshot of the same storage thereafter).
type MerkleIndex struct {
	ix *pmap.DigestIndex[*rowEntry]
}

// MerkleIndex builds the subtree-digest index for the table's current
// rows.
func (t *Table) MerkleIndex() *MerkleIndex {
	return &MerkleIndex{ix: pmap.NewDigestIndex(t.rows, rowEntryLeaf)}
}

// Has reports whether some subtree of the indexed snapshot digests to d.
func (m *MerkleIndex) Has(d [32]byte) bool { return m.ix.Has(d) }

// MerkleAssembler rebuilds a table's contents from an in-order stream of
// parts — locally matched subtrees (grafted by digest from a base
// snapshot, reusing its row entries and their cached digests) and
// explicitly transferred rows. The anti-entropy receiver drives it while
// walking the provider's tree; Table() finalizes in O(n) via the sorted
// bulk build.
//
// Appends must arrive in strictly ascending storage-key order — the
// in-order walk of the remote tree yields exactly that, so a violation
// means a corrupt or malicious stream and is rejected immediately (the
// final payload-hash check would catch it too, but failing early beats
// building the table first).
type MerkleAssembler struct {
	base    *Table
	index   *MerkleIndex
	keys    []string
	entries []*rowEntry
	keyBuf  []byte
}

// NewMerkleAssembler creates an assembler grafting from base (the
// receiver's current replica; its schema also types the transferred
// rows).
func NewMerkleAssembler(base *Table) *MerkleAssembler {
	return &MerkleAssembler{base: base, index: base.MerkleIndex()}
}

// HasLocal reports whether the base snapshot holds a subtree with the
// given digest — if so, AppendLocal can graft it without any transfer.
func (a *MerkleAssembler) HasLocal(d [32]byte) bool { return a.index.Has(d) }

// ErrSyncStream marks a malformed anti-entropy stream (out-of-order or
// duplicate keys, rows not matching their subtree digest position).
var ErrSyncStream = fmt.Errorf("reldb: malformed sync stream")

func (a *MerkleAssembler) push(k string, e *rowEntry) error {
	if n := len(a.keys); n > 0 && k <= a.keys[n-1] {
		return fmt.Errorf("%w: key out of order", ErrSyncStream)
	}
	a.keys = append(a.keys, k)
	a.entries = append(a.entries, e)
	return nil
}

// AppendLocal grafts the base subtree with the given digest: its entries
// (and their cached row digests) are appended in order.
func (a *MerkleAssembler) AppendLocal(d [32]byte) error {
	var err error
	ok := a.index.ix.Ascend(d, func(k string, e *rowEntry) bool {
		err = a.push(k, e)
		return err == nil
	})
	if !ok {
		return fmt.Errorf("%w: unknown local digest", ErrSyncStream)
	}
	return err
}

// AppendRow appends one transferred row, validating it against the
// schema. The assembler takes ownership of the row.
func (a *MerkleAssembler) AppendRow(r Row) error {
	if err := a.base.schema.checkRow(r); err != nil {
		return err
	}
	a.keyBuf = a.base.AppendKeyOf(a.keyBuf[:0], r)
	return a.push(string(a.keyBuf), &rowEntry{row: r})
}

// Len returns the number of rows assembled so far.
func (a *MerkleAssembler) Len() int { return len(a.keys) }

// Table finalizes the assembly into a fresh table named like the base.
// The result inherits the base's priority seed — the walk compared
// subtree digests against the provider's seeded tree, so the rebuilt
// replica must share that shape. The caller is expected to verify the
// result against an authoritative hash (the on-chain payload hash)
// before installing it.
func (a *MerkleAssembler) Table() (*Table, error) {
	t, err := NewTable(a.base.schema)
	if err != nil {
		return nil, err
	}
	t.rows = pmap.FromSortedSeeded(a.base.rows.Seed(), a.keys, a.entries)
	return t, nil
}
