package reldb

import (
	"errors"
	"testing"
)

func evalOn(t *testing.T, p Predicate, r Row) bool {
	t.Helper()
	got, err := p.Eval(patientSchema(), r)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return got
}

func TestPredicateTrue(t *testing.T) {
	if !evalOn(t, True(), alice()) {
		t.Fatal("True() must match")
	}
}

func TestPredicateCmpOperators(t *testing.T) {
	r := alice() // age 30
	cases := []struct {
		op   CmpOp
		v    int64
		want bool
	}{
		{OpEq, 30, true}, {OpEq, 31, false},
		{OpNe, 30, false}, {OpNe, 31, true},
		{OpLt, 31, true}, {OpLt, 30, false},
		{OpLe, 30, true}, {OpLe, 29, false},
		{OpGt, 29, true}, {OpGt, 30, false},
		{OpGe, 30, true}, {OpGe, 31, false},
	}
	for _, c := range cases {
		if got := evalOn(t, Cmp("age", c.op, I(c.v)), r); got != c.want {
			t.Errorf("age %s %d = %v, want %v", c.op, c.v, got, c.want)
		}
	}
}

func TestPredicateNullSemantics(t *testing.T) {
	b := bob() // city NULL
	if evalOn(t, Cmp("city", OpLt, S("Z")), b) {
		t.Fatal("NULL < x must be false")
	}
	if !evalOn(t, Eq("city", Null()), b) {
		t.Fatal("NULL == NULL via Eq must hold")
	}
	if evalOn(t, Eq("city", Null()), alice()) {
		t.Fatal("Osaka == NULL must be false")
	}
	if !evalOn(t, Cmp("city", OpNe, Null()), alice()) {
		t.Fatal("Osaka != NULL must be true")
	}
	if !evalOn(t, IsNull("city"), b) || evalOn(t, IsNull("city"), alice()) {
		t.Fatal("IsNull wrong")
	}
}

func TestPredicateBooleans(t *testing.T) {
	r := alice()
	p := And(Eq("city", S("Osaka")), Cmp("age", OpGe, I(18)))
	if !evalOn(t, p, r) {
		t.Fatal("And should match")
	}
	p = Or(Eq("city", S("Kyoto")), Eq("name", S("alice")))
	if !evalOn(t, p, r) {
		t.Fatal("Or should match")
	}
	if evalOn(t, Not(True()), r) {
		t.Fatal("Not(True) should not match")
	}
	if evalOn(t, And(True(), Not(True())), r) {
		t.Fatal("And with false conjunct should not match")
	}
}

func TestPredicateUnknownColumn(t *testing.T) {
	_, err := Eq("ghost", I(1)).Eval(patientSchema(), alice())
	if !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
}

func TestPredicateTypeMismatch(t *testing.T) {
	_, err := Cmp("age", OpLt, S("thirty")).Eval(patientSchema(), alice())
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

func TestPredicateColumns(t *testing.T) {
	p := And(Eq("a", I(1)), Or(Eq("b", I(2)), Not(IsNull("c"))))
	got := p.Columns()
	want := map[string]bool{"a": true, "b": true, "c": true}
	if len(got) != 3 {
		t.Fatalf("columns = %v", got)
	}
	for _, c := range got {
		if !want[c] {
			t.Fatalf("unexpected column %s", c)
		}
	}
}

func TestPredicateSerializationRoundTrip(t *testing.T) {
	preds := []Predicate{
		True(),
		Eq("city", S("Osaka")),
		Cmp("age", OpGe, I(18)),
		IsNull("city"),
		And(Eq("name", S("alice")), Not(Cmp("age", OpLt, I(10)))),
		Or(True(), IsNull("city"), Eq("age", I(1))),
	}
	rows := []Row{alice(), bob()}
	for i, p := range preds {
		raw, err := MarshalPredicate(p)
		if err != nil {
			t.Fatalf("pred %d marshal: %v", i, err)
		}
		back, err := UnmarshalPredicate(raw)
		if err != nil {
			t.Fatalf("pred %d unmarshal: %v", i, err)
		}
		for _, r := range rows {
			a, err1 := p.Eval(patientSchema(), r)
			b, err2 := back.Eval(patientSchema(), r)
			if (err1 == nil) != (err2 == nil) || a != b {
				t.Fatalf("pred %d semantics changed after round trip", i)
			}
		}
	}
}

func TestPredicateUnmarshalRejectsGarbage(t *testing.T) {
	for _, raw := range []string{
		`{"op":"alien"}`,
		`{"op":"cmp","col":"x"}`,  // missing value
		`{"op":"not","inner":[]}`, // wrong arity
		`{"op":"not","inner":[{"op":"true"},{"op":"true"}]}`,
		`not even json`,
	} {
		if _, err := UnmarshalPredicate([]byte(raw)); err == nil {
			t.Errorf("unmarshal %s should fail", raw)
		}
	}
}
