package reldb

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"time"
)

// decodeFuzzValue consumes one Value from a fuzz byte stream: a kind
// selector byte followed by a kind-specific payload. It deliberately
// reaches every kind — including NaN floats and extreme times — so the
// encoding properties are exercised across the whole value space.
func decodeFuzzValue(data []byte) (Value, []byte) {
	if len(data) == 0 {
		return Null(), nil
	}
	kind := data[0] % 6
	data = data[1:]
	take8 := func() uint64 {
		var buf [8]byte
		n := copy(buf[:], data)
		data = data[n:]
		return binary.BigEndian.Uint64(buf[:])
	}
	switch Kind(kind) {
	case KindString:
		n := 0
		if len(data) > 0 {
			n = int(data[0]) % 16
			data = data[1:]
		}
		if n > len(data) {
			n = len(data)
		}
		s := string(data[:n])
		return S(s), data[n:]
	case KindInt:
		return I(int64(take8())), data
	case KindFloat:
		return F(math.Float64frombits(take8())), data
	case KindBool:
		b := false
		if len(data) > 0 {
			b = data[0]&1 == 1
			data = data[1:]
		}
		return B(b), data
	case KindTime:
		return T(time.UnixMicro(int64(take8()))), data
	default:
		return Null(), data
	}
}

// isOrderExceptionFloat reports the two documented divergences between
// Value comparison and the ordered encoding: NaN (incomparable under
// Compare, ordered by bit pattern in the encoding) and negative zero
// (Compare/Equal treat -0 == +0, the encoding keeps their sign bits
// distinct).
func isOrderExceptionFloat(v Value) bool {
	f, ok := v.Float()
	return ok && (math.IsNaN(f) || (f == 0 && math.Signbit(f)))
}

// FuzzAppendOrdered checks the contract the whole storage layer rests
// on: bytewise comparison of AppendOrdered encodings agrees with
// Value.Compare, equal encodings coincide with Value.Equal, and the
// encoding is self-delimiting — comparing the concatenations of two
// value tuples agrees with comparing the tuples element-wise, which is
// exactly how composite primary and secondary index keys are ordered.
//
// NaN and negative-zero floats are the documented exceptions: Compare
// treats NaN as incomparable and -0 as equal to +0, while the encoding
// orders NaNs deterministically by bit pattern and keeps the zeros'
// sign bits distinct. Ordering/equality agreement is therefore only
// asserted for exception-free values; determinism and injectivity
// (equal encodings ⇒ equal values) are asserted for all values.
func FuzzAppendOrdered(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 3, 'a', 'b', 0, 1, 3, 'a', 'b', 'c'})                         // "ab" vs "abc": prefix case
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 5, 2, 255, 255, 255, 255, 255, 255, 0}) // +int vs -int
	f.Add([]byte{3, 255, 248, 0, 0, 0, 0, 0, 1, 3, 127, 240, 0, 0, 0, 0, 0, 0})  // NaN vs +Inf
	f.Add([]byte{1, 2, 'x', 0, 1, 2, 'x', 1})                                     // embedded NUL boundary
	f.Fuzz(func(t *testing.T, data []byte) {
		a, rest := decodeFuzzValue(data)
		b, rest := decodeFuzzValue(rest)
		c, rest := decodeFuzzValue(rest)
		d, _ := decodeFuzzValue(rest)

		encA := a.AppendOrdered(nil)
		encB := b.AppendOrdered(nil)

		// Determinism: re-encoding yields identical bytes.
		if !bytes.Equal(encA, a.AppendOrdered(nil)) {
			t.Fatal("encoding not deterministic")
		}
		// Equal encodings must mean equal values (injectivity); for
		// NaN-free values the converse holds too.
		if bytes.Equal(encA, encB) && !a.Equal(b) {
			t.Fatalf("distinct values %v and %v share an encoding", a, b)
		}
		hasException := isOrderExceptionFloat(a) || isOrderExceptionFloat(b)
		if !hasException {
			if a.Equal(b) != bytes.Equal(encA, encB) {
				t.Fatalf("equality disagreement: %v vs %v", a, b)
			}
			if got, want := sign(bytes.Compare(encA, encB)), sign(a.Compare(b)); got != want {
				t.Fatalf("order disagreement: enc %d, Compare %d (%v vs %v)", got, want, a, b)
			}
		}

		// Self-delimitation: tuple concatenation must order like the
		// tuple — (a,c) vs (b,d) bytewise equals compare a,b then c,d.
		if hasException || isOrderExceptionFloat(c) || isOrderExceptionFloat(d) {
			return
		}
		tupAC := c.AppendOrdered(a.AppendOrdered(nil))
		tupBD := d.AppendOrdered(b.AppendOrdered(nil))
		want := a.Compare(b)
		if want == 0 && a.Equal(b) {
			want = c.Compare(d)
		} else if want == 0 {
			// Compare==0 without Equal cannot happen for NaN-free values;
			// guard anyway so a future kind with partial order fails loudly
			// here rather than corrupting the tuple property.
			t.Fatalf("Compare==0 but not Equal for %v vs %v", a, b)
		}
		if got := sign(bytes.Compare(tupAC, tupBD)); got != sign(want) {
			t.Fatalf("tuple order disagreement: enc %d want %d ((%v,%v) vs (%v,%v))", got, sign(want), a, c, b, d)
		}
	})
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
