package reldb

import (
	"errors"
	"fmt"
	"sort"
	"testing"
)

func secTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl := MustNewTable(patientSchema())
	for i := 0; i < n; i++ {
		tbl.MustInsert(Row{I(int64(i)), S(fmt.Sprintf("p%d", i)), S(fmt.Sprintf("city%d", i%4)), I(int64(20 + i%3))})
	}
	return tbl
}

// groupIDs extracts the id column of a lookup result, sorted.
func groupIDs(t *testing.T, rows []Row) []int64 {
	t.Helper()
	out := make([]int64, 0, len(rows))
	for _, r := range rows {
		v, _ := r[0].Int()
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scanByCity is the O(n) reference the index must agree with.
func scanByCity(tbl *Table, city string) []int64 {
	var out []int64
	_ = tbl.Scan(func(r Row) (bool, error) {
		if s, _ := r[2].Str(); s == city {
			v, _ := r[0].Int()
			out = append(out, v)
		}
		return true, nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func expectGroup(t *testing.T, tbl *Table, city string) {
	t.Helper()
	rows, err := tbl.RowsByCols([]string{"city"}, Row{S(city)})
	if err != nil {
		t.Fatal(err)
	}
	got := groupIDs(t, rows)
	want := scanByCity(tbl, city)
	if len(got) != len(want) {
		t.Fatalf("city %s: got %v want %v", city, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("city %s: got %v want %v", city, got, want)
		}
	}
}

func TestRowsByColsBasic(t *testing.T) {
	tbl := secTable(t, 20)
	for i := 0; i < 4; i++ {
		expectGroup(t, tbl, fmt.Sprintf("city%d", i))
	}
	// Missing group.
	rows, err := tbl.RowsByCols([]string{"city"}, Row{S("nowhere")})
	if err != nil || len(rows) != 0 {
		t.Fatalf("missing group: rows=%v err=%v", rows, err)
	}
	// Multi-column index.
	rows, err = tbl.RowsByCols([]string{"city", "age"}, Row{S("city0"), I(20)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		c, _ := r[2].Str()
		a, _ := r[3].Int()
		if c != "city0" || a != 20 {
			t.Fatalf("row %v does not match composite key", r)
		}
	}
	// Unknown column errors.
	if _, err := tbl.RowsByCols([]string{"ghost"}, Row{S("x")}); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
}

// TestRowsByColsIncremental checks the index stays in sync through every
// mutator: insert, keyed update, upsert-replace, delete.
func TestRowsByColsIncremental(t *testing.T) {
	tbl := secTable(t, 12)
	expectGroup(t, tbl, "city1") // builds the index

	// Insert into an existing group and a fresh group.
	tbl.MustInsert(Row{I(100), S("new"), S("city1"), I(50)})
	tbl.MustInsert(Row{I(101), S("new2"), S("fresh"), I(50)})
	expectGroup(t, tbl, "city1")
	expectGroup(t, tbl, "fresh")

	// Update moves a row between groups.
	if err := tbl.Update(Row{I(1)}, map[string]Value{"city": S("city2")}); err != nil {
		t.Fatal(err)
	}
	expectGroup(t, tbl, "city1")
	expectGroup(t, tbl, "city2")

	// Upsert replaces in place.
	if err := tbl.Upsert(Row{I(2), S("p2x"), S("city3"), I(99)}); err != nil {
		t.Fatal(err)
	}
	expectGroup(t, tbl, "city2")
	expectGroup(t, tbl, "city3")

	// Delete unregisters (and exercises swap-with-last position moves).
	for _, id := range []int64{0, 100, 5} {
		if err := tbl.Delete(Row{I(id)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		expectGroup(t, tbl, fmt.Sprintf("city%d", i))
	}
	expectGroup(t, tbl, "fresh")
}

// TestRowsByColsCOW checks clone independence: the index is shared on
// clone, and either side's mutations are invisible to the other.
func TestRowsByColsCOW(t *testing.T) {
	tbl := secTable(t, 8)
	expectGroup(t, tbl, "city0") // build before cloning

	cl := tbl.Clone()
	if err := cl.Update(Row{I(0)}, map[string]Value{"city": S("moved")}); err != nil {
		t.Fatal(err)
	}
	expectGroup(t, cl, "city0")
	expectGroup(t, cl, "moved")
	// Original unchanged.
	expectGroup(t, tbl, "city0")
	if rows, _ := tbl.RowsByCols([]string{"city"}, Row{S("moved")}); len(rows) != 0 {
		t.Fatal("clone mutation leaked into original's index")
	}

	// Index built on the clone only, after sharing storage.
	cl2 := tbl.Clone()
	expectGroup(t, cl2, "city1")
	if err := tbl.Delete(Row{I(1)}); err != nil {
		t.Fatal(err)
	}
	expectGroup(t, tbl, "city1")
	expectGroup(t, cl2, "city1")
}

// TestRowsByColsConcurrentBuild races lazy builds from readers sharing
// one immutable snapshot (the serveDataFetch shape).
func TestRowsByColsConcurrentBuild(t *testing.T) {
	tbl := secTable(t, 50)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			cols := []string{"city"}
			if g%2 == 0 {
				cols = []string{"age"}
			}
			key := Row{S("city1")}
			if g%2 == 0 {
				key = Row{I(21)}
			}
			for i := 0; i < 50; i++ {
				if _, err := tbl.RowsByCols(cols, key); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
