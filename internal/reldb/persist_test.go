package reldb

import (
	"math/rand"
	"testing"
)

// collectNodes exports every node of t not already in known into it and
// returns the number of fresh nodes emitted.
func collectNodes(t *Table, known map[[32]byte]NodeData) int {
	fresh := 0
	t.ExportNodes(
		func(d [32]byte) bool { _, ok := known[d]; return ok },
		func(n NodeData) bool { known[n.Digest] = n; fresh++; return true },
	)
	return fresh
}

// TestPersistRoundTrip: export → import reproduces the exact table
// (root, hash, contents), for unkeyed and keyed priorities alike.
func TestPersistRoundTrip(t *testing.T) {
	for _, secret := range [][]byte{nil, []byte("share-secret")} {
		rng := rand.New(rand.NewSource(7))
		tab, _ := randomMerkleTable(rng, 200)
		tab = tab.Reseeded(secret)

		known := make(map[[32]byte]NodeData)
		collectNodes(tab, known)

		got, err := TableFromNodes(tab.Schema(), secret, tab.RowsRoot(), tab.Len(),
			func(d [32]byte) (NodeData, bool) { n, ok := known[d]; return n, ok })
		if err != nil {
			t.Fatalf("secret=%q: TableFromNodes: %v", secret, err)
		}
		if got.Hash() != tab.Hash() {
			t.Fatalf("secret=%q: recovered hash differs", secret)
		}
		if !got.Equal(tab) {
			t.Fatalf("secret=%q: recovered table not equal", secret)
		}
		// The recovered table must be fully functional, not just equal:
		// mutate it and check the root tracks.
		if err := got.Upsert(Row{I(9999), S("x"), S("y")}); err != nil {
			t.Fatalf("mutating recovered table: %v", err)
		}
		want := tab.Clone()
		want.MustInsert(Row{I(9999), S("x"), S("y")})
		if got.RowsRoot() != want.RowsRoot() {
			t.Fatalf("secret=%q: recovered table diverges after mutation", secret)
		}
	}
}

// TestPersistIncremental: exporting a k-row descendant against the
// ancestor's digest set emits O(k log n) nodes, not O(n).
func TestPersistIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab, _ := randomMerkleTable(rng, 1000)
	known := make(map[[32]byte]NodeData)
	full := collectNodes(tab, known)
	if full != tab.Len() {
		t.Fatalf("full export emitted %d nodes for %d rows", full, tab.Len())
	}

	next := tab.Clone()
	next.MustInsert(Row{I(100000), S("new"), S("row")})
	fresh := collectNodes(next, known)
	if fresh == 0 || fresh > 40 {
		t.Fatalf("one-row delta exported %d nodes (want O(log n), ~<=40)", fresh)
	}

	got, err := TableFromNodes(next.Schema(), nil, next.RowsRoot(), next.Len(),
		func(d [32]byte) (NodeData, bool) { n, ok := known[d]; return n, ok })
	if err != nil {
		t.Fatalf("TableFromNodes after incremental export: %v", err)
	}
	if !got.Equal(next) {
		t.Fatal("incremental recovery not equal")
	}
}

// TestPersistRejectsCorruption: a tampered record set must be detected —
// wrong row content, wrong root, missing interior node, or a cyclic DAG
// all fail loudly instead of yielding silently wrong data.
func TestPersistRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab, _ := randomMerkleTable(rng, 64)
	known := make(map[[32]byte]NodeData)
	collectNodes(tab, known)
	root := tab.RowsRoot()
	fetchFrom := func(m map[[32]byte]NodeData) func([32]byte) (NodeData, bool) {
		return func(d [32]byte) (NodeData, bool) { n, ok := m[d]; return n, ok }
	}

	// Tamper with one row in place (digest key unchanged).
	tampered := make(map[[32]byte]NodeData, len(known))
	for d, n := range known {
		tampered[d] = n
	}
	tamperedOne := false
	for d, n := range tampered {
		if len(n.Row) > 0 && !tamperedOne {
			r := n.Row.Clone()
			r[2] = S("EVIL")
			n.Row = r
			tampered[d] = n
			tamperedOne = true
		}
	}
	if _, err := TableFromNodes(tab.Schema(), nil, root, tab.Len(), fetchFrom(tampered)); err == nil {
		t.Fatal("tampered row content accepted")
	}

	// Missing interior node.
	if _, err := TableFromNodes(tab.Schema(), nil, root, tab.Len(),
		func(d [32]byte) (NodeData, bool) {
			if d == root {
				return NodeData{}, false
			}
			return known[d], len(known[d].Row) > 0
		}); err == nil {
		t.Fatal("missing root accepted")
	}

	// Cyclic DAG: a record referencing itself must hit the node bound,
	// not recurse forever.
	cyc := make(map[[32]byte]NodeData, len(known))
	for d, n := range known {
		n.Left = d // self-cycle
		cyc[d] = n
	}
	if _, err := TableFromNodes(tab.Schema(), nil, root, tab.Len(), fetchFrom(cyc)); err == nil {
		t.Fatal("cyclic DAG accepted")
	}

	// Wrong expected root.
	var bogus [32]byte
	bogus[0] = 0xff
	if _, err := TableFromNodes(tab.Schema(), nil, bogus, tab.Len(), fetchFrom(known)); err == nil {
		t.Fatal("bogus root accepted")
	}
}
