package reldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiffEmpty(t *testing.T) {
	a := newPatients(t, alice(), bob())
	b := newPatients(t, alice(), bob())
	cs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Empty() || cs.Size() != 0 {
		t.Fatalf("diff of equal tables = %+v", cs)
	}
}

func TestDiffClassifies(t *testing.T) {
	a := newPatients(t, alice(), bob())
	b := newPatients(t, bob(), Row{I(3), S("carol"), Null(), I(25)})
	if err := b.Update(Row{I(2)}, map[string]Value{"age": I(42)}); err != nil {
		t.Fatal(err)
	}
	cs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Inserted) != 1 || len(cs.Deleted) != 1 || len(cs.Updated) != 1 {
		t.Fatalf("diff = %+v", cs)
	}
	if cs.Size() != 3 {
		t.Fatalf("size = %d", cs.Size())
	}
	if v, _ := cs.Updated[0].After[3].Int(); v != 42 {
		t.Fatalf("updated after = %v", cs.Updated[0].After)
	}
}

func TestDiffIncompatibleSchemas(t *testing.T) {
	a := newPatients(t)
	b := MustNewTable(visitsSchema())
	if _, err := a.Diff(b); err == nil {
		t.Fatal("diff across schemas should fail")
	}
}

func TestApplyRoundTrip(t *testing.T) {
	a := newPatients(t, alice(), bob())
	b := newPatients(t, Row{I(3), S("carol"), Null(), I(25)}, alice())
	if err := b.Update(Row{I(1)}, map[string]Value{"city": S("Kyoto")}); err != nil {
		t.Fatal(err)
	}
	cs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	if err := c.Apply(cs); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(b) {
		t.Fatal("apply(diff(a,b)) != b")
	}
}

// TestApplyDiffQuick: for random table pairs, applying the diff always
// reproduces the target.
func TestApplyDiffQuick(t *testing.T) {
	gen := func(rng *rand.Rand) *Table {
		tbl := MustNewTable(patientSchema())
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			id := int64(rng.Intn(30))
			_ = tbl.Upsert(Row{
				I(id),
				S(fmt.Sprintf("p%d", rng.Intn(5))),
				S(fmt.Sprintf("c%d", rng.Intn(3))),
				I(int64(rng.Intn(100))),
			})
		}
		return tbl
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		cs, err := a.Diff(b)
		if err != nil {
			return false
		}
		c := a.Clone()
		if err := c.Apply(cs); err != nil {
			return false
		}
		return c.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChangedColumnsUpdates(t *testing.T) {
	a := newPatients(t, alice())
	b := a.Clone()
	if err := b.Update(Row{I(1)}, map[string]Value{"age": I(31)}); err != nil {
		t.Fatal(err)
	}
	cs, _ := a.Diff(b)
	cols := cs.ChangedColumns(a.Schema())
	if len(cols) != 1 || !cols["age"] {
		t.Fatalf("cols = %v", cols)
	}
}

func TestChangedColumnsInsert(t *testing.T) {
	a := newPatients(t, alice())
	b := newPatients(t, alice(), bob())
	cs, _ := a.Diff(b)
	cols := cs.ChangedColumns(a.Schema())
	if len(cols) != 4 {
		t.Fatalf("insert should touch all columns, got %v", cols)
	}
}

func TestChangedColumnsRenameDetection(t *testing.T) {
	// Deleting key 1 and inserting key 9 with identical non-key values is
	// a key rename: only the key column changes.
	a := newPatients(t, alice())
	b := newPatients(t, Row{I(9), S("alice"), S("Osaka"), I(30)})
	cs, _ := a.Diff(b)
	cols := cs.ChangedColumns(a.Schema())
	if len(cols) != 1 || !cols["id"] {
		t.Fatalf("rename should touch only the key, got %v", cols)
	}
}

func TestChangedColumnsRenamePlusEdit(t *testing.T) {
	// Rename with a changed non-key value is not a pure rename: all
	// columns are (conservatively) touched.
	a := newPatients(t, alice())
	b := newPatients(t, Row{I(9), S("alice"), S("Kyoto"), I(30)})
	cs, _ := a.Diff(b)
	cols := cs.ChangedColumns(a.Schema())
	if len(cols) != 4 {
		t.Fatalf("rename+edit should touch all columns, got %v", cols)
	}
}

func TestChangedColumnsMixed(t *testing.T) {
	a := newPatients(t, alice(), bob())
	b := a.Clone()
	if err := b.Update(Row{I(2)}, map[string]Value{"name": S("robert")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(Row{I(1)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(Row{I(9), S("alice"), S("Osaka"), I(30)}); err != nil {
		t.Fatal(err)
	}
	cs, _ := a.Diff(b)
	cols := cs.ChangedColumns(a.Schema())
	// rename of alice (1->9) plus name update of bob.
	if !cols["id"] || !cols["name"] {
		t.Fatalf("cols = %v", cols)
	}
	if cols["city"] || cols["age"] {
		t.Fatalf("untouched columns reported: %v", cols)
	}
}
