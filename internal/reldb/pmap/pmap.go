// Package pmap implements an immutable, persistent ordered map from
// string keys to values, the structural-sharing storage substrate of
// reldb tables. Every mutating operation returns a *new* map that shares
// all untouched structure with its input, so
//
//   - a snapshot ("clone") is one pointer copy, O(1);
//   - Set and Delete copy only the O(log n) path from the root to the
//     touched key, never the whole map;
//   - two maps derived from a common ancestor by k edits share all but
//     O(k log n) nodes, which Diff exploits to compare them in
//     O(k log n) instead of O(n).
//
// The implementation is a *hash-ordered treap*: a binary search tree on
// the keys that is simultaneously a max-heap on per-key priorities
// derived by SHA-256 from the key bytes. Because the priority is a pure
// function of the key, the tree shape is a pure function of the key set
// — two maps holding the same entries have byte-for-byte identical
// structure no matter how they were built (incremental inserts, bulk
// FromSorted, deletes and re-inserts, different machines). That
// history-independence is what makes the cached subtree digests below a
// *canonical* Merkle commitment: equal content ⇔ equal root, and two
// replicas that agree on a subtree's digest hold identical copies of
// that subtree, which the anti-entropy sync layer exploits to ship only
// divergent subtrees. A weight-balanced tree (the previous
// implementation) cannot offer this: its shape depends on the mutation
// history, so independently built replicas would share no digests.
//
// The table layer needs *ordered* iteration (canonical key-sorted row
// order falls out of an in-order walk for free) and prefix range scans
// (the secondary index stores composite secondary-key‖primary-key
// entries and answers group lookups with a prefix walk); the treap keeps
// both. Balance is probabilistic rather than worst-case: expected depth
// is O(log n) because SHA-256-derived priorities are computationally
// indistinguishable from random. An adversary who can choose keys can in
// principle grind for priority patterns that skew the tree (a
// performance degradation, not a correctness or integrity loss — the
// digests commit to content regardless of shape); rows here are typed
// medical records keyed by short primary keys, where that grinding buys
// little.
//
// Every node lazily caches the SHA-256 Merkle digest of its subtree,
// domain-separated through internal/merkle (leaf entries and interior
// nodes hash under distinct prefixes, blocking second-preimage splicing).
// Mutations never invalidate anything: path copying replaces exactly the
// nodes whose digests change, and fresh nodes start uncached, so the
// first root digest after a k-edit delta recomputes only the O(k log n)
// fresh nodes. MerkleRoot, Prove/VerifyProof (membership proofs), and
// the SummaryAt/AscendSubtree/DigestIndex accessors used by structural
// anti-entropy all build on that cache.
//
// Bulk construction goes through a Transient (transient.go): a
// mutable-until-shared builder that allocates nodes from slabs, mutates
// nodes it created in place, path-copies adopted structure exactly like
// the persistent operations, and freezes into an ordinary Map — so
// whole-table rebuilds pay one allocation per slab instead of per node.
// Priorities are optionally *keyed* (seed.go): a per-map HMAC-SHA-256
// secret replaces the bare SHA-256 derivation, making tree shapes
// unpredictable without the secret while replicas sharing it still
// converge to identical shapes.
//
// The zero Map is the empty map. Maps are safe for concurrent readers
// without synchronization (nodes are immutable apart from the idempotent
// digest cache, which racing readers store identical values into); a
// *variable* holding a map needs the caller's usual synchronization when
// rebound.
package pmap

import (
	"crypto/sha256"
	"encoding/binary"
	"sync/atomic"
)

// Hash is a SHA-256 digest (the merkle package's Hash).
type Hash = [32]byte

// LeafFunc computes the digest of one entry for the Merkle layer. Every
// caller computing digests over structurally shared maps must supply the
// same function for the same value type — the per-node cache stores the
// result of whichever function ran first.
type LeafFunc[V any] func(k string, v V) Hash

// Map is an immutable ordered map from string keys to values of type V.
// The zero value is the empty map (with unkeyed priorities; see
// NewSeeded for keyed ones).
type Map[V any] struct {
	root *node[V]
	// seed keys the priority derivation (nil = plain SHA-256). Every
	// map derived from this one inherits it, so one lineage never mixes
	// priority schemes.
	seed *Seed
}

// NewSeeded returns an empty map whose priorities are derived under the
// given seed (nil behaves exactly like the zero Map).
func NewSeeded[V any](seed *Seed) Map[V] { return Map[V]{seed: seed} }

// Seed returns the map's priority seed (nil for unkeyed maps). Callers
// use it to build sibling structures that must share this map's shape
// (the anti-entropy assembler, table reseeding).
func (m Map[V]) Seed() *Seed { return m.seed }

// node is an immutable tree node. Nodes are never mutated after
// construction (all "mutation" builds new nodes along the root path)
// except for dig, the idempotent lazily cached subtree digest — and
// except while owned by a live Transient, which may mutate nodes it
// created in place until Freeze publishes them (see transient.go).
type node[V any] struct {
	key   string
	val   V
	pri   uint64 // heap priority: first 8 bytes of (H)MAC-SHA-256(key)
	size  int    // nodes in this subtree, including this one
	left  *node[V]
	right *node[V]
	// edit is the owner token of the Transient that created this node,
	// nil once the node is shared (created by a persistent op, or its
	// transient froze). Only the owning transient reads it; persistent
	// operations never mutate nodes regardless.
	edit *transientTok
	// dig caches the Merkle digest of this subtree. Atomic because
	// concurrent readers of a shared snapshot may race the lazy
	// computation; the digest is a pure function of the subtree, so
	// racing stores write the same value.
	dig atomic.Pointer[Hash]
}

// prio derives a node's heap priority from its key. SHA-256 keeps the
// tree shape unpredictable without a secret and consistent across
// machines and process restarts — both replicas of a shared table build
// byte-identical trees.
func prio(k string) uint64 {
	d := sha256.Sum256([]byte(k))
	return binary.BigEndian.Uint64(d[:8])
}

// higher reports whether entry (p1,k1) outranks (p2,k2) in heap order.
// The key tie-break makes the order strict and total, so the treap shape
// is unique even if two distinct keys collide on priority.
func higher(p1 uint64, k1 string, p2 uint64, k2 string) bool {
	if p1 != p2 {
		return p1 > p2
	}
	return k1 > k2
}

func size[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return n.size
}

func mk[V any](l *node[V], k string, p uint64, v V, r *node[V]) *node[V] {
	return &node[V]{key: k, val: v, pri: p, size: size(l) + size(r) + 1, left: l, right: r}
}

// Len returns the number of entries.
func (m Map[V]) Len() int { return size(m.root) }

// Get returns the value stored under k.
func (m Map[V]) Get(k string) (V, bool) {
	n := m.root
	for n != nil {
		switch {
		case k < n.key:
			n = n.left
		case k > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// CompareBytesKey compares a byte-slice key with a string key bytewise
// without converting (and so without allocating). Exported for callers
// that probe string-keyed structures with reused byte buffers (the
// table builder's Peek).
func CompareBytesKey(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// GetBytes is Get for a key held as a byte slice; it never allocates.
// Hot paths (index probes with reused key buffers) use it.
func (m Map[V]) GetBytes(k []byte) (V, bool) {
	n := m.root
	for n != nil {
		switch CompareBytesKey(k, n.key) {
		case -1:
			n = n.left
		case 1:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Has reports whether k is present.
func (m Map[V]) Has(k string) bool {
	_, ok := m.Get(k)
	return ok
}

// Set returns a map with k bound to v (replacing any existing binding)
// plus whether a binding existed. The receiver is unchanged.
func (m Map[V]) Set(k string, v V) (Map[V], bool) {
	root, existed := set(m.root, k, m.seed.prio(k), v)
	return Map[V]{root: root, seed: m.seed}, existed
}

func set[V any](n *node[V], k string, p uint64, v V) (*node[V], bool) {
	if n == nil {
		return mk[V](nil, k, p, v, nil), false
	}
	if k == n.key {
		// Same key, same priority, same position: replace in place.
		return mk(n.left, k, p, v, n.right), true
	}
	if higher(p, k, n.pri, n.key) {
		// The new entry outranks this subtree's root, so it becomes the
		// root here and n splits around it. k cannot already be present
		// below n: an equal key would carry this same priority and could
		// not sit under the lower-ranked n.
		l, _, _, r := split(n, k)
		return mk(l, k, p, v, r), false
	}
	if k < n.key {
		l, existed := set(n.left, k, p, v)
		return mk(l, n.key, n.pri, n.val, n.right), existed
	}
	r, existed := set(n.right, k, p, v)
	return mk(n.left, n.key, n.pri, n.val, r), existed
}

// Delete returns a map without k, plus whether k was present. When k is
// absent the receiver is returned unchanged (no copying).
func (m Map[V]) Delete(k string) (Map[V], bool) {
	root, existed := del(m.root, k)
	if !existed {
		return m, false
	}
	return Map[V]{root: root, seed: m.seed}, true
}

func del[V any](n *node[V], k string) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	switch {
	case k < n.key:
		l, existed := del(n.left, k)
		if !existed {
			return n, false
		}
		return mk(l, n.key, n.pri, n.val, n.right), true
	case k > n.key:
		r, existed := del(n.right, k)
		if !existed {
			return n, false
		}
		return mk(n.left, n.key, n.pri, n.val, r), true
	default:
		return join(n.left, n.right), true
	}
}

// join merges two sibling subtrees (all keys of l < all keys of r) by
// descending the lower-ranked side, preserving heap order — the treap's
// replacement for rebalancing rotations.
func join[V any](l, r *node[V]) *node[V] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case higher(l.pri, l.key, r.pri, r.key):
		return mk(l.left, l.key, l.pri, l.val, join(l.right, r))
	default:
		return mk(join(l, r.left), r.key, r.pri, r.val, r.right)
	}
}

// Ascend calls fn for every entry in ascending key order until fn
// returns false.
func (m Map[V]) Ascend(fn func(k string, v V) bool) {
	m.root.ascend(fn)
}

func (n *node[V]) ascend(fn func(string, V) bool) bool {
	if n == nil {
		return true
	}
	return n.left.ascend(fn) && fn(n.key, n.val) && n.right.ascend(fn)
}

// AscendPrefix calls fn for every entry whose key starts with prefix, in
// ascending key order, until fn returns false.
func (m Map[V]) AscendPrefix(prefix string, fn func(k string, v V) bool) {
	m.root.ascendFrom(prefix, func(k string, v V) bool {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			return false // past the prefix range
		}
		return fn(k, v)
	})
}

// ascendFrom visits entries with key >= lo in ascending order.
func (n *node[V]) ascendFrom(lo string, fn func(string, V) bool) bool {
	if n == nil {
		return true
	}
	if n.key < lo {
		return n.right.ascendFrom(lo, fn)
	}
	return n.left.ascendFrom(lo, fn) && fn(n.key, n.val) && n.right.ascend(fn)
}

// AppendMapped appends f(v) for every value in ascending key order. With
// a preallocated dst and a top-level (non-closure) f it performs no
// allocations beyond dst's growth — the table layer's zero-copy row
// accessors are built on it.
func AppendMapped[V, U any](m Map[V], dst []U, f func(V) U) []U {
	return appendMapped(m.root, dst, f)
}

func appendMapped[V, U any](n *node[V], dst []U, f func(V) U) []U {
	if n == nil {
		return dst
	}
	dst = appendMapped(n.left, dst, f)
	dst = append(dst, f(n.val))
	return appendMapped(n.right, dst, f)
}

// FromSorted builds a map from keys and parallel vals in one O(n) pass.
// keys MUST be in strictly ascending order — the precondition is the
// caller's to guarantee (table builders append rows in canonical scan
// order) and is not rechecked here. The result is the canonical treap of
// the key set — identical in shape to the same entries inserted one by
// one — built on a Transient (right-spine Cartesian construction over
// slab-allocated nodes).
func FromSorted[V any](keys []string, vals []V) Map[V] {
	return FromSortedSeeded(nil, keys, vals)
}

// FromSortedSeeded is FromSorted with keyed priorities: the result's
// shape matches incremental inserts into NewSeeded(seed).
func FromSortedSeeded[V any](seed *Seed, keys []string, vals []V) Map[V] {
	t := NewTransient[V](seed)
	for i, k := range keys {
		t.appendAscending(k, vals[i])
	}
	return t.Freeze()
}

// split partitions n around k into the entries below k, the value at k
// (if present), and the entries above k. Subtrees entirely on one side
// are reused by pointer, which is what lets Diff keep pruning
// pointer-equal structure after a split. Reassembly with mk preserves
// heap order (children of the reused nodes only lose entries), so both
// halves are themselves canonical treaps of their key sets.
func split[V any](n *node[V], k string) (l *node[V], v V, found bool, r *node[V]) {
	if n == nil {
		var zero V
		return nil, zero, false, nil
	}
	switch {
	case k < n.key:
		ll, v, found, lr := split(n.left, k)
		return ll, v, found, mk(lr, n.key, n.pri, n.val, n.right)
	case k > n.key:
		rl, v, found, rr := split(n.right, k)
		return mk(n.left, n.key, n.pri, n.val, rl), v, found, rr
	default:
		return n.left, n.val, true, n.right
	}
}

// Diff compares a and b and reports their differences in ascending key
// order: onA for keys only in a, onB for keys only in b, and onBoth for
// keys present in both whose values differ under same. Any callback
// returning false aborts the walk (equality checks stop at the first
// difference). Pointer-equal subtrees are skipped wholesale, so diffing
// a map against a descendant produced by k edits costs O(k log n)
// rather than O(n) — the property that makes ProposeUpdate/UpdateView's
// view diff proportional to the edit, not the table.
func Diff[V any](a, b Map[V], same func(x, y V) bool, onA, onB func(k string, v V) bool, onBoth func(k string, x, y V) bool) {
	diffNodes(a.root, b.root, same, onA, onB, onBoth)
}

func diffNodes[V any](a, b *node[V], same func(x, y V) bool, onA, onB func(string, V) bool, onBoth func(string, V, V) bool) bool {
	if a == b {
		return true
	}
	if a == nil {
		return b.ascend(onB)
	}
	if b == nil {
		return a.ascend(onA)
	}
	bl, bv, found, br := split(b, a.key)
	if !diffNodes(a.left, bl, same, onA, onB, onBoth) {
		return false
	}
	if found {
		if !same(a.val, bv) && !onBoth(a.key, a.val, bv) {
			return false
		}
	} else if !onA(a.key, a.val) {
		return false
	}
	return diffNodes(a.right, br, same, onA, onB, onBoth)
}
