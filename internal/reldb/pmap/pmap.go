// Package pmap implements an immutable, persistent ordered map from
// string keys to values, the structural-sharing storage substrate of
// reldb tables. Every mutating operation returns a *new* map that shares
// all untouched structure with its input, so
//
//   - a snapshot ("clone") is one pointer copy, O(1);
//   - Set and Delete copy only the O(log n) path from the root to the
//     touched key, never the whole map;
//   - two maps derived from a common ancestor by k edits share all but
//     O(k log n) nodes, which Diff exploits to compare them in
//     O(k log n) instead of O(n).
//
// The implementation is a weight-balanced binary search tree (the
// delta=3 / ratio=2 scheme of Haskell's Data.Map, whose balance
// conditions are machine-checked in the literature) rather than a
// hash-array-mapped trie: the table layer needs *ordered* iteration
// (canonical key-sorted row order falls out of an in-order walk for
// free, with no cached sort to invalidate) and prefix range scans (the
// secondary index stores composite secondary-key‖primary-key entries and
// answers group lookups with a prefix walk). A HAMT offers neither; the
// structural-sharing and O(log n) path-copy properties are the same.
//
// The zero Map is the empty map. Maps are safe for concurrent readers
// without synchronization (they are immutable); a *variable* holding a
// map needs the caller's usual synchronization when rebound.
package pmap

// Map is an immutable ordered map from string keys to values of type V.
// The zero value is the empty map.
type Map[V any] struct {
	root *node[V]
}

// node is an immutable tree node. Nodes are never mutated after
// construction; all "mutation" builds new nodes along the root path.
type node[V any] struct {
	key   string
	val   V
	size  int // nodes in this subtree, including this one
	left  *node[V]
	right *node[V]
}

// Balance parameters, exactly Data.Map's: a subtree may be at most
// delta times the size of its sibling; ratio picks single vs double
// rotation.
const (
	delta = 3
	ratio = 2
)

func size[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return n.size
}

func mk[V any](l *node[V], k string, v V, r *node[V]) *node[V] {
	return &node[V]{key: k, val: v, size: size(l) + size(r) + 1, left: l, right: r}
}

// balanceL rebuilds a node whose LEFT subtree may have become too heavy
// (after an insert on the left or a delete on the right), rotating right
// when the weight invariant is violated.
func balanceL[V any](k string, v V, l, r *node[V]) *node[V] {
	if size(l) > delta*size(r) && size(l) >= 2 {
		// l is non-nil with at least two nodes; rotate right.
		if size(l.right) < ratio*size(l.left) {
			// Single right rotation.
			return mk(l.left, l.key, l.val, mk(l.right, k, v, r))
		}
		// Double rotation: l.right is non-nil here (its size exceeds
		// ratio*size(l.left) >= 0 and the subtree has >= 2 nodes).
		lr := l.right
		return mk(mk(l.left, l.key, l.val, lr.left), lr.key, lr.val, mk(lr.right, k, v, r))
	}
	return mk(l, k, v, r)
}

// balanceR is the mirror image: the RIGHT subtree may be too heavy.
func balanceR[V any](k string, v V, l, r *node[V]) *node[V] {
	if size(r) > delta*size(l) && size(r) >= 2 {
		if size(r.left) < ratio*size(r.right) {
			// Single left rotation.
			return mk(mk(l, k, v, r.left), r.key, r.val, r.right)
		}
		rl := r.left
		return mk(mk(l, k, v, rl.left), rl.key, rl.val, mk(rl.right, r.key, r.val, r.right))
	}
	return mk(l, k, v, r)
}

// Len returns the number of entries.
func (m Map[V]) Len() int { return size(m.root) }

// Get returns the value stored under k.
func (m Map[V]) Get(k string) (V, bool) {
	n := m.root
	for n != nil {
		switch {
		case k < n.key:
			n = n.left
		case k > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// CompareBytesKey compares a byte-slice key with a string key bytewise
// without converting (and so without allocating). Exported for callers
// that probe string-keyed structures with reused byte buffers (the
// table builder's Peek).
func CompareBytesKey(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// GetBytes is Get for a key held as a byte slice; it never allocates.
// Hot paths (index probes with reused key buffers) use it.
func (m Map[V]) GetBytes(k []byte) (V, bool) {
	n := m.root
	for n != nil {
		switch CompareBytesKey(k, n.key) {
		case -1:
			n = n.left
		case 1:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Has reports whether k is present.
func (m Map[V]) Has(k string) bool {
	_, ok := m.Get(k)
	return ok
}

// Set returns a map with k bound to v (replacing any existing binding)
// plus whether a binding existed. The receiver is unchanged.
func (m Map[V]) Set(k string, v V) (Map[V], bool) {
	root, existed := set(m.root, k, v)
	return Map[V]{root: root}, existed
}

func set[V any](n *node[V], k string, v V) (*node[V], bool) {
	if n == nil {
		return mk[V](nil, k, v, nil), false
	}
	switch {
	case k < n.key:
		l, existed := set(n.left, k, v)
		if existed {
			return mk(l, n.key, n.val, n.right), true
		}
		return balanceL(n.key, n.val, l, n.right), false
	case k > n.key:
		r, existed := set(n.right, k, v)
		if existed {
			return mk(n.left, n.key, n.val, r), true
		}
		return balanceR(n.key, n.val, n.left, r), false
	default:
		return &node[V]{key: k, val: v, size: n.size, left: n.left, right: n.right}, true
	}
}

// Delete returns a map without k, plus whether k was present. When k is
// absent the receiver is returned unchanged (no copying).
func (m Map[V]) Delete(k string) (Map[V], bool) {
	root, existed := del(m.root, k)
	if !existed {
		return m, false
	}
	return Map[V]{root: root}, true
}

func del[V any](n *node[V], k string) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	switch {
	case k < n.key:
		l, existed := del(n.left, k)
		if !existed {
			return n, false
		}
		return balanceR(n.key, n.val, l, n.right), true
	case k > n.key:
		r, existed := del(n.right, k)
		if !existed {
			return n, false
		}
		return balanceL(n.key, n.val, n.left, r), true
	default:
		return glue(n.left, n.right), true
	}
}

// glue merges two balanced sibling subtrees (all keys of l < all keys
// of r, sizes within the balance bound of each other).
func glue[V any](l, r *node[V]) *node[V] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case size(l) > size(r):
		k, v, nl := popMax(l)
		return balanceR(k, v, nl, r)
	default:
		k, v, nr := popMin(r)
		return balanceL(k, v, l, nr)
	}
}

func popMin[V any](n *node[V]) (string, V, *node[V]) {
	if n.left == nil {
		return n.key, n.val, n.right
	}
	k, v, l := popMin(n.left)
	return k, v, balanceR(n.key, n.val, l, n.right)
}

func popMax[V any](n *node[V]) (string, V, *node[V]) {
	if n.right == nil {
		return n.key, n.val, n.left
	}
	k, v, r := popMax(n.right)
	return k, v, balanceL(n.key, n.val, n.left, r)
}

// Ascend calls fn for every entry in ascending key order until fn
// returns false.
func (m Map[V]) Ascend(fn func(k string, v V) bool) {
	m.root.ascend(fn)
}

func (n *node[V]) ascend(fn func(string, V) bool) bool {
	if n == nil {
		return true
	}
	return n.left.ascend(fn) && fn(n.key, n.val) && n.right.ascend(fn)
}

// AscendPrefix calls fn for every entry whose key starts with prefix, in
// ascending key order, until fn returns false.
func (m Map[V]) AscendPrefix(prefix string, fn func(k string, v V) bool) {
	m.root.ascendFrom(prefix, func(k string, v V) bool {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			return false // past the prefix range
		}
		return fn(k, v)
	})
}

// ascendFrom visits entries with key >= lo in ascending order.
func (n *node[V]) ascendFrom(lo string, fn func(string, V) bool) bool {
	if n == nil {
		return true
	}
	if n.key < lo {
		return n.right.ascendFrom(lo, fn)
	}
	return n.left.ascendFrom(lo, fn) && fn(n.key, n.val) && n.right.ascend(fn)
}

// AppendMapped appends f(v) for every value in ascending key order. With
// a preallocated dst and a top-level (non-closure) f it performs no
// allocations beyond dst's growth — the table layer's zero-copy row
// accessors are built on it.
func AppendMapped[V, U any](m Map[V], dst []U, f func(V) U) []U {
	return appendMapped(m.root, dst, f)
}

func appendMapped[V, U any](n *node[V], dst []U, f func(V) U) []U {
	if n == nil {
		return dst
	}
	dst = appendMapped(n.left, dst, f)
	dst = append(dst, f(n.val))
	return appendMapped(n.right, dst, f)
}

// FromSorted builds a map from keys and parallel vals in one O(n) pass.
// keys MUST be in strictly ascending order — the precondition is the
// caller's to guarantee (table builders append rows in canonical scan
// order) and is not rechecked here. The result is a perfectly balanced
// tree, which trivially satisfies the weight invariant.
func FromSorted[V any](keys []string, vals []V) Map[V] {
	return Map[V]{root: buildSorted(keys, vals)}
}

func buildSorted[V any](keys []string, vals []V) *node[V] {
	if len(keys) == 0 {
		return nil
	}
	mid := len(keys) / 2
	return &node[V]{
		key:   keys[mid],
		val:   vals[mid],
		size:  len(keys),
		left:  buildSorted(keys[:mid], vals[:mid]),
		right: buildSorted(keys[mid+1:], vals[mid+1:]),
	}
}

// link joins l, k/v, r where every key of l < k < every key of r and l
// and r are each balanced but may differ arbitrarily in size. It is
// Data.Map's link: descend the spine of the heavier side until the
// remainder balances against the lighter side, then rebalance upward.
func link[V any](k string, v V, l, r *node[V]) *node[V] {
	switch {
	case l == nil:
		return insertMin(k, v, r)
	case r == nil:
		return insertMax(k, v, l)
	case delta*l.size < r.size:
		return balanceL(r.key, r.val, link(k, v, l, r.left), r.right)
	case delta*r.size < l.size:
		return balanceR(l.key, l.val, l.left, link(k, v, l.right, r))
	default:
		return mk(l, k, v, r)
	}
}

func insertMin[V any](k string, v V, n *node[V]) *node[V] {
	if n == nil {
		return mk[V](nil, k, v, nil)
	}
	return balanceL(n.key, n.val, insertMin(k, v, n.left), n.right)
}

func insertMax[V any](k string, v V, n *node[V]) *node[V] {
	if n == nil {
		return mk[V](nil, k, v, nil)
	}
	return balanceR(n.key, n.val, n.left, insertMax(k, v, n.right))
}

// split partitions n around k into the entries below k, the value at k
// (if present), and the entries above k. Subtrees entirely on one side
// are reused by pointer, which is what lets Diff keep pruning
// pointer-equal structure after a split.
func split[V any](n *node[V], k string) (l *node[V], v V, found bool, r *node[V]) {
	if n == nil {
		var zero V
		return nil, zero, false, nil
	}
	switch {
	case k < n.key:
		ll, v, found, lr := split(n.left, k)
		return ll, v, found, link(n.key, n.val, lr, n.right)
	case k > n.key:
		rl, v, found, rr := split(n.right, k)
		return link(n.key, n.val, n.left, rl), v, found, rr
	default:
		return n.left, n.val, true, n.right
	}
}

// Diff compares a and b and reports their differences in ascending key
// order: onA for keys only in a, onB for keys only in b, and onBoth for
// keys present in both whose values differ under same. Any callback
// returning false aborts the walk (equality checks stop at the first
// difference). Pointer-equal subtrees are skipped wholesale, so diffing
// a map against a descendant produced by k edits costs O(k log n)
// rather than O(n) — the property that makes ProposeUpdate/UpdateView's
// view diff proportional to the edit, not the table.
func Diff[V any](a, b Map[V], same func(x, y V) bool, onA, onB func(k string, v V) bool, onBoth func(k string, x, y V) bool) {
	diffNodes(a.root, b.root, same, onA, onB, onBoth)
}

func diffNodes[V any](a, b *node[V], same func(x, y V) bool, onA, onB func(string, V) bool, onBoth func(string, V, V) bool) bool {
	if a == b {
		return true
	}
	if a == nil {
		return b.ascend(onB)
	}
	if b == nil {
		return a.ascend(onA)
	}
	bl, bv, found, br := split(b, a.key)
	if !diffNodes(a.left, bl, same, onA, onB, onBoth) {
		return false
	}
	if found {
		if !same(a.val, bv) && !onBoth(a.key, a.val, bv) {
			return false
		}
	} else if !onA(a.key, a.val) {
		return false
	}
	return diffNodes(a.right, br, same, onA, onB, onBoth)
}
