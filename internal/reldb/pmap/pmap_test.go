package pmap

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// checkInvariants walks the tree verifying the structural invariants
// everything else rests on: key order, correct sizes, correct stored
// priorities, and the treap heap order that makes the shape canonical.
func checkInvariants[V any](t *testing.T, m Map[V]) {
	t.Helper()
	var walk func(n *node[V], lo, hi string, hasLo, hasHi bool) int
	walk = func(n *node[V], lo, hi string, hasLo, hasHi bool) int {
		if n == nil {
			return 0
		}
		if hasLo && n.key <= lo {
			t.Fatalf("order violated: %q <= lower bound %q", n.key, lo)
		}
		if hasHi && n.key >= hi {
			t.Fatalf("order violated: %q >= upper bound %q", n.key, hi)
		}
		if n.pri != m.seed.prio(n.key) {
			t.Fatalf("stored priority at %q does not match prio(key)", n.key)
		}
		for _, c := range []*node[V]{n.left, n.right} {
			if c != nil && higher(c.pri, c.key, n.pri, n.key) {
				t.Fatalf("heap order violated: child %q outranks parent %q", c.key, n.key)
			}
		}
		ls := walk(n.left, lo, n.key, hasLo, true)
		rs := walk(n.right, n.key, hi, true, hasHi)
		if n.size != ls+rs+1 {
			t.Fatalf("size wrong at %q: have %d want %d", n.key, n.size, ls+rs+1)
		}
		return n.size
	}
	walk(m.root, "", "", false, false)
}

// sameShape reports whether two trees are structurally identical
// (same keys at the same positions).
func sameShape[V any](a, b *node[V]) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.key == b.key && sameShape(a.left, b.left) && sameShape(a.right, b.right)
}

// collect returns the map contents as sorted key/value pairs.
func collect(m Map[int]) ([]string, []int) {
	var ks []string
	var vs []int
	m.Ascend(func(k string, v int) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return true
	})
	return ks, vs
}

// TestMapAgainstReferenceModel drives random op sequences against a
// plain Go map and checks full agreement (contents, Len, iteration
// order) plus the structural invariants after every operation.
func TestMapAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var m Map[int]
		ref := make(map[string]int)
		for op := 0; op < 400; op++ {
			k := fmt.Sprintf("k%03d", rng.Intn(120))
			switch rng.Intn(4) {
			case 0, 1: // set twice as often as delete so the map grows
				v := rng.Int()
				var existed bool
				m, existed = m.Set(k, v)
				_, refExisted := ref[k]
				if existed != refExisted {
					t.Logf("seed %d: Set(%q) existed=%v want %v", seed, k, existed, refExisted)
					return false
				}
				ref[k] = v
			case 2:
				var existed bool
				m, existed = m.Delete(k)
				_, refExisted := ref[k]
				if existed != refExisted {
					t.Logf("seed %d: Delete(%q) existed=%v want %v", seed, k, existed, refExisted)
					return false
				}
				delete(ref, k)
			case 3:
				v, ok := m.Get(k)
				refV, refOK := ref[k]
				if ok != refOK || (ok && v != refV) {
					t.Logf("seed %d: Get(%q) = %v,%v want %v,%v", seed, k, v, ok, refV, refOK)
					return false
				}
				if bv, bok := m.GetBytes([]byte(k)); bok != ok || bv != v {
					t.Logf("seed %d: GetBytes(%q) disagrees with Get", seed, k)
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			t.Logf("seed %d: Len %d want %d", seed, m.Len(), len(ref))
			return false
		}
		ks, vs := collect(m)
		if !sort.StringsAreSorted(ks) {
			t.Logf("seed %d: iteration not sorted", seed)
			return false
		}
		for i, k := range ks {
			if ref[k] != vs[i] {
				t.Logf("seed %d: content mismatch at %q", seed, k)
				return false
			}
		}
		checkInvariants(t, m)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPersistenceSnapshotsUnchanged: every intermediate version of the
// map must remain exactly as it was when later versions mutate — the
// defining property of persistence.
func TestPersistenceSnapshotsUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type snap struct {
		m   Map[int]
		ref map[string]int
	}
	var m Map[int]
	ref := make(map[string]int)
	var snaps []snap
	for op := 0; op < 300; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(80))
		if rng.Intn(3) == 0 {
			m, _ = m.Delete(k)
			delete(ref, k)
		} else {
			v := rng.Int()
			m, _ = m.Set(k, v)
			ref[k] = v
		}
		if op%37 == 0 {
			cp := make(map[string]int, len(ref))
			for k, v := range ref {
				cp[k] = v
			}
			snaps = append(snaps, snap{m: m, ref: cp})
		}
	}
	for i, s := range snaps {
		if s.m.Len() != len(s.ref) {
			t.Fatalf("snapshot %d: len %d want %d", i, s.m.Len(), len(s.ref))
		}
		ks, vs := collect(s.m)
		for j, k := range ks {
			if s.ref[k] != vs[j] {
				t.Fatalf("snapshot %d: %q changed under later mutations", i, k)
			}
		}
	}
}

// TestStructuralSharing: a single-key edit of a large map must allocate
// only a root path of new nodes, aliasing everything else. This is the
// O(log n)-per-delta guarantee made concrete.
func TestStructuralSharing(t *testing.T) {
	var m Map[int]
	const n = 4096
	for i := 0; i < n; i++ {
		m, _ = m.Set(fmt.Sprintf("k%05d", i), i)
	}
	nodes := func(mm Map[int]) map[*node[int]]bool {
		set := make(map[*node[int]]bool)
		var walk func(*node[int])
		walk = func(nd *node[int]) {
			if nd == nil {
				return
			}
			set[nd] = true
			walk(nd.left)
			walk(nd.right)
		}
		walk(mm.root)
		return set
	}
	before := nodes(m)
	m2, _ := m.Set("k02048", -1)
	fresh := 0
	for nd := range nodes(m2) {
		if !before[nd] {
			fresh++
		}
	}
	// A 4096-entry treap has expected depth ~2·ln(n) ≈ 17; allow
	// generous slack while still catching any O(n) copying.
	if fresh > 40 {
		t.Fatalf("one-key edit created %d fresh nodes (want O(log n))", fresh)
	}
	if v, _ := m.Get("k02048"); v != 2048 {
		t.Fatal("original mutated by derived edit")
	}
	if v, _ := m2.Get("k02048"); v != -1 {
		t.Fatal("edit lost")
	}
}

// TestFromSortedMatchesIncremental: the O(n) bulk build must produce the
// same contents as n incremental sets, with valid invariants — and,
// because the treap shape is canonical, the *identical tree structure*.
func TestFromSortedMatchesIncremental(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		keys := make([]string, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%05d", i)
			vals[i] = i * 3
		}
		bulk := FromSorted(keys, vals)
		checkInvariants(t, bulk)
		var inc Map[int]
		for i := range keys {
			inc, _ = inc.Set(keys[i], vals[i])
		}
		bk, bv := collect(bulk)
		ik, iv := collect(inc)
		if len(bk) != len(ik) {
			t.Fatalf("n=%d: bulk %d entries, incremental %d", n, len(bk), len(ik))
		}
		for i := range bk {
			if bk[i] != ik[i] || bv[i] != iv[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
		if !sameShape(bulk.root, inc.root) {
			t.Fatalf("n=%d: bulk and incremental builds disagree on shape (canonicity broken)", n)
		}
	}
}

// TestShapeHistoryIndependence: the defining treap property — any
// sequence of operations arriving at the same contents yields the same
// tree shape. Random shuffled inserts plus delete/re-insert churn must
// converge to the shape of the plain ascending build.
func TestShapeHistoryIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 200
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%04d", i)
		}
		var canon Map[int]
		for i, k := range keys {
			canon, _ = canon.Set(k, i)
		}
		// Shuffled insert order, with churn: a third of the keys are
		// inserted with a throwaway value, deleted, and re-inserted.
		perm := rng.Perm(n)
		var m Map[int]
		for _, i := range perm {
			if i%3 == 0 {
				m, _ = m.Set(keys[i], -1)
				m, _ = m.Delete(keys[i])
			}
			m, _ = m.Set(keys[i], i)
		}
		checkInvariants(t, m)
		if !sameShape(canon.root, m.root) {
			t.Logf("seed %d: shuffled build diverged in shape", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestAscendPrefix checks prefix scans against a filtered full walk.
func TestAscendPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var m Map[int]
	for i := 0; i < 500; i++ {
		m, _ = m.Set(fmt.Sprintf("g%02d/p%04d", rng.Intn(20), i), i)
	}
	for g := 0; g < 20; g++ {
		prefix := fmt.Sprintf("g%02d/", g)
		var got []string
		m.AscendPrefix(prefix, func(k string, _ int) bool {
			got = append(got, k)
			return true
		})
		var want []string
		m.Ascend(func(k string, _ int) bool {
			if strings.HasPrefix(k, prefix) {
				want = append(want, k)
			}
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("prefix %q: got %d keys want %d", prefix, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("prefix %q: order mismatch at %d", prefix, i)
			}
		}
	}
}

// TestDiffAgainstReferenceModel checks Diff between two random maps
// against the set-algebra answer, including value-change detection.
func TestDiffAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func() (Map[int], map[string]int) {
			var m Map[int]
			ref := make(map[string]int)
			for i := 0; i < 150; i++ {
				k := fmt.Sprintf("k%03d", rng.Intn(100))
				v := rng.Intn(5)
				m, _ = m.Set(k, v)
				ref[k] = v
			}
			return m, ref
		}
		a, ra := build()
		b, rb := build()
		onlyA := map[string]bool{}
		onlyB := map[string]bool{}
		changed := map[string]bool{}
		var order []string
		Diff(a, b, func(x, y int) bool { return x == y },
			func(k string, _ int) bool { onlyA[k] = true; order = append(order, k); return true },
			func(k string, _ int) bool { onlyB[k] = true; order = append(order, k); return true },
			func(k string, _, _ int) bool { changed[k] = true; order = append(order, k); return true },
		)
		for k, v := range ra {
			bv, ok := rb[k]
			switch {
			case !ok && !onlyA[k]:
				t.Logf("seed %d: missing onlyA %q", seed, k)
				return false
			case ok && v != bv && !changed[k]:
				t.Logf("seed %d: missing change %q", seed, k)
				return false
			case ok && v == bv && (changed[k] || onlyA[k] || onlyB[k]):
				t.Logf("seed %d: false positive %q", seed, k)
				return false
			}
		}
		for k := range rb {
			if _, ok := ra[k]; !ok && !onlyB[k] {
				t.Logf("seed %d: missing onlyB %q", seed, k)
				return false
			}
		}
		if len(onlyA)+len(onlyB)+len(changed) != len(order) {
			t.Logf("seed %d: duplicate emission", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDiffPrunesSharedStructure: diffing a map against a k-edit
// descendant must touch O(k log n) nodes, not O(n). Measured through the
// value-comparison callback: pointer-equal subtrees are skipped without
// comparing.
func TestDiffPrunesSharedStructure(t *testing.T) {
	var m Map[int]
	const n = 8192
	for i := 0; i < n; i++ {
		m, _ = m.Set(fmt.Sprintf("k%05d", i), i)
	}
	d := m
	for _, i := range []int{17, 4000, 8100} {
		d, _ = d.Set(fmt.Sprintf("k%05d", i), -i)
	}
	comparisons := 0
	diffs := 0
	Diff(m, d, func(x, y int) bool { comparisons++; return x == y },
		func(string, int) bool { diffs++; return true },
		func(string, int) bool { diffs++; return true },
		func(string, int, int) bool { diffs++; return true },
	)
	if diffs != 3 {
		t.Fatalf("diffs = %d, want 3", diffs)
	}
	// Without pruning this would be ~8192 comparisons.
	if comparisons > 200 {
		t.Fatalf("diff compared %d entries of a 3-edit derived map (pruning broken)", comparisons)
	}
}

// TestConcurrentReaders exercises the immutability contract under the
// race detector: many goroutines reading one map (and diffing snapshots)
// while a writer derives new versions must be race-free.
func TestConcurrentReaders(t *testing.T) {
	var m Map[int]
	for i := 0; i < 1000; i++ {
		m, _ = m.Set(fmt.Sprintf("k%04d", i), i)
	}
	base := m
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if v, ok := base.Get(fmt.Sprintf("k%04d", i)); !ok || v != i {
					t.Errorf("reader %d: wrong value", w)
					return
				}
				sum := 0
				base.AscendPrefix("k00", func(_ string, v int) bool { sum += v; return true })
			}
		}(w)
	}
	// Writer derives private versions; base is never rebound.
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := base
		for i := 0; i < 500; i++ {
			d, _ = d.Set(fmt.Sprintf("k%04d", i%1000), -i)
		}
		if d.Len() != base.Len() {
			t.Error("writer changed length unexpectedly")
		}
	}()
	wg.Wait()
}
