package pmap

// Transient mode ("mutable until shared"): building a fresh map — or
// applying a burst of edits that nobody else can observe yet — through
// the persistent operations pays one heap allocation per touched node.
// A Transient removes that cost without giving up any persistence
// guarantee:
//
//   - nodes the transient creates are tagged with its owner token and
//     allocated from slabs (one heap allocation per slabSize nodes);
//   - a mutation that reaches an *owned* node updates it in place; a
//     mutation that reaches a node adopted from an existing map (no
//     token, or another builder's token) path-copies exactly as the
//     persistent operations would — adopted structure is never touched;
//   - Freeze retires the owner token and returns an ordinary persistent
//     Map. Nothing is walked or copied at freeze: fresh nodes simply
//     stop being mutable, and their Merkle digests — untouched during
//     building — are computed lazily by the first MerkleRoot exactly
//     like any other uncached node.
//
// Ascending bulk builds get a further fast path: while keys arrive in
// strictly increasing order the transient grows the tree with the
// right-spine Cartesian construction (O(1) amortized per append, no
// comparisons against interior nodes), deferring subtree sizes until
// the run ends. The first out-of-order operation settles the sizes and
// degrades transparently to ordinary O(log n) transient inserts — the
// same contract reldb's TableBuilder has always offered, now one layer
// lower so every bulk rebuild (table operators, lens puts, the
// anti-entropy assembler) shares it.
//
// A Transient is single-owner and not safe for concurrent use; the Maps
// it freezes are as shareable as any other.

// transientTok is an owner token: one allocation whose identity marks
// the nodes a live transient may mutate.
type transientTok struct{ _ byte }

// slabMin and slabMax bound the node-arena chunk sizes: chunks grow
// geometrically from slabMin to slabMax, so a tiny frozen map pins at
// most a handful of spare nodes while bulk builds still amortize the
// per-chunk allocation 128 ways.
const (
	slabMin = 8
	slabMax = 128
)

// Transient is a mutable builder for a Map. Obtain one with
// NewTransient (empty) or Map.Transient (adopting existing structure),
// mutate it, then Freeze it exactly once.
type Transient[V any] struct {
	tok *transientTok
	// ph derives priorities (seeded or not) with a reusable scratch
	// buffer — no per-key allocation on the bulk paths.
	ph   seedHasher
	root *node[V]
	// count tracks Len incrementally (subtree sizes may be deferred).
	count int
	// slab is the current node arena chunk; slabCap is the next chunk's
	// size (geometric growth, slabMin → slabMax).
	slab    []node[V]
	slabCap int
	// Ascending-run state: while spine is live (settled == false) the
	// tree's subtree sizes are stale and appends go through the
	// right-spine construction. spine holds the right spine, root first.
	spine   []*node[V]
	last    string
	hasLast bool
	settled bool
}

// NewTransient returns an empty transient with the given priority seed
// (nil = unkeyed).
func NewTransient[V any](seed *Seed) *Transient[V] {
	return &Transient[V]{tok: &transientTok{}, ph: seed.hasher()}
}

// Transient returns a builder seeded with the map's contents (adopted
// by pointer, O(1)) and priority seed. The map itself is immutable as
// ever; the transient path-copies whatever it touches.
func (m Map[V]) Transient() *Transient[V] {
	return &Transient[V]{
		tok:     &transientTok{},
		ph:      m.seed.hasher(),
		root:    m.root,
		count:   m.Len(),
		settled: true, // adopted sizes are valid; no ascending run
	}
}

// alloc hands out one owned node from the slab.
func (t *Transient[V]) alloc(l *node[V], k string, p uint64, v V, r *node[V]) *node[V] {
	if len(t.slab) == 0 {
		if t.slabCap < slabMin {
			t.slabCap = slabMin
		}
		t.slab = make([]node[V], t.slabCap)
		if t.slabCap < slabMax {
			t.slabCap *= 2
		}
	}
	n := &t.slab[0]
	t.slab = t.slab[1:]
	n.key, n.val, n.pri, n.left, n.right, n.edit = k, v, p, l, r, t.tok
	n.size = size(l) + size(r) + 1
	return n
}

func (t *Transient[V]) live() {
	if t.tok == nil {
		panic("pmap: use of frozen Transient")
	}
}

// Len returns the number of entries currently in the transient.
func (t *Transient[V]) Len() int {
	t.live()
	return t.count
}

// Get returns the value stored under k. It works in every phase (the
// tree's search pointers are always valid, even mid-ascending-run).
func (t *Transient[V]) Get(k string) (V, bool) {
	t.live()
	return Map[V]{root: t.root}.Get(k)
}

// GetBytes is Get for a byte-slice key; it never allocates.
func (t *Transient[V]) GetBytes(k []byte) (V, bool) {
	t.live()
	return Map[V]{root: t.root}.GetBytes(k)
}

// appendAscending grows the tree by one entry whose key is strictly
// greater than every key already present — the caller's precondition
// (FromSorted's contract). O(1) amortized: the right-spine construction.
func (t *Transient[V]) appendAscending(k string, v V) {
	n := t.alloc(nil, k, t.ph.prio(k), v, nil)
	// Pop spine entries the new (rightmost) node outranks; the last
	// popped becomes its left subtree.
	var last *node[V]
	for len(t.spine) > 0 {
		top := t.spine[len(t.spine)-1]
		if !higher(n.pri, n.key, top.pri, top.key) {
			break
		}
		last = top
		t.spine = t.spine[:len(t.spine)-1]
	}
	n.left = last
	if len(t.spine) == 0 {
		t.root = n
	} else {
		t.spine[len(t.spine)-1].right = n
	}
	t.spine = append(t.spine, n)
	t.count++
	t.last, t.hasLast = k, true
}

// settle ends the ascending run: subtree sizes of the spine-built
// region (all owned nodes) are filled in and subsequent operations take
// the ordinary transient paths.
func (t *Transient[V]) settle() {
	if t.settled {
		return
	}
	t.fixSizes(t.root)
	t.spine = nil
	t.settled = true
}

// fixSizes recomputes subtree sizes across the owned region. Nodes not
// owned by this transient were never mutated, so their stored sizes are
// already correct and the walk stops there.
func (t *Transient[V]) fixSizes(n *node[V]) int {
	if n == nil {
		return 0
	}
	if n.edit != t.tok {
		return n.size
	}
	n.size = t.fixSizes(n.left) + t.fixSizes(n.right) + 1
	return n.size
}

// Insert adds k→v and reports whether it was added; an existing binding
// is left untouched and false is returned (the builder's duplicate-key
// probe). Strictly ascending inserts take the O(1) spine path.
func (t *Transient[V]) Insert(k string, v V) bool {
	t.live()
	if !t.settled {
		if !t.hasLast || k > t.last {
			t.appendAscending(k, v)
			return true
		}
		if k == t.last {
			return false
		}
		t.settle()
	}
	root, added := t.insert(t.root, k, t.ph.prio(k), v)
	if !added {
		return false
	}
	t.root = root
	t.count++
	return true
}

// insert is set without replacement: a duplicate key returns the
// subtree untouched (one descent probes and inserts).
func (t *Transient[V]) insert(n *node[V], k string, p uint64, v V) (*node[V], bool) {
	if n == nil {
		return t.alloc(nil, k, p, v, nil), true
	}
	if k == n.key {
		return n, false
	}
	if higher(p, k, n.pri, n.key) {
		// k cannot occur below n (same argument as set).
		l, r := t.split(n, k)
		return t.alloc(l, k, p, v, r), true
	}
	if k < n.key {
		l, added := t.insert(n.left, k, p, v)
		if !added {
			return n, false
		}
		return t.rebuild(n, l, n.right), true
	}
	r, added := t.insert(n.right, k, p, v)
	if !added {
		return n, false
	}
	return t.rebuild(n, n.left, r), true
}

// Set binds k→v, replacing any existing binding, and reports whether
// one existed.
func (t *Transient[V]) Set(k string, v V) bool {
	t.live()
	if !t.settled {
		if !t.hasLast || k > t.last {
			t.appendAscending(k, v)
			return false
		}
		if k == t.last {
			// The spine's rightmost node is owned: replace in place.
			t.spine[len(t.spine)-1].val = v
			return true
		}
		t.settle()
	}
	var existed bool
	t.root, existed = t.set(t.root, k, t.ph.prio(k), v)
	if !existed {
		t.count++
	}
	return existed
}

// set is the transient insert-or-replace: structurally the persistent
// set, but nodes owned by this transient are updated in place instead
// of copied.
func (t *Transient[V]) set(n *node[V], k string, p uint64, v V) (*node[V], bool) {
	if n == nil {
		return t.alloc(nil, k, p, v, nil), false
	}
	if k == n.key {
		if n.edit == t.tok {
			n.val = v
			return n, true
		}
		return t.alloc(n.left, k, p, v, n.right), true
	}
	if higher(p, k, n.pri, n.key) {
		// Same argument as the persistent set: the new entry outranks
		// this subtree's root and k cannot occur below n.
		l, r := t.split(n, k)
		return t.alloc(l, k, p, v, r), false
	}
	if k < n.key {
		l, existed := t.set(n.left, k, p, v)
		return t.rebuild(n, l, n.right), existed
	}
	r, existed := t.set(n.right, k, p, v)
	return t.rebuild(n, n.left, r), existed
}

// rebuild re-points n's children after a child-side mutation, in place
// when n is owned and by copy otherwise.
func (t *Transient[V]) rebuild(n, l, r *node[V]) *node[V] {
	if n.edit == t.tok {
		n.left, n.right = l, r
		n.size = size(l) + size(r) + 1
		return n
	}
	return t.alloc(l, n.key, n.pri, n.val, r)
}

// Delete removes k and reports whether it was present.
func (t *Transient[V]) Delete(k string) bool {
	t.live()
	t.settle()
	root, existed := t.del(t.root, k)
	if !existed {
		return false
	}
	t.root = root
	t.count--
	return true
}

func (t *Transient[V]) del(n *node[V], k string) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	switch {
	case k < n.key:
		l, existed := t.del(n.left, k)
		if !existed {
			return n, false
		}
		return t.rebuild(n, l, n.right), true
	case k > n.key:
		r, existed := t.del(n.right, k)
		if !existed {
			return n, false
		}
		return t.rebuild(n, n.left, r), true
	default:
		return t.join(n.left, n.right), true
	}
}

// split is the transient counterpart of the shared split: the same
// partitioning recursion, minus the value probe the transient call sites
// never use, with path nodes re-pointed in place when owned and drawn
// from the slab arena otherwise — no per-node heap allocation through mk.
// In-place reuse is sound for the same reason rebuild's is: an owned
// node is reachable only through this transient's tree, and split moves
// it wholesale into exactly one of the two halves.
func (t *Transient[V]) split(n *node[V], k string) (l, r *node[V]) {
	if n == nil {
		return nil, nil
	}
	switch {
	case k < n.key:
		ll, lr := t.split(n.left, k)
		return ll, t.rebuild(n, lr, n.right)
	case k > n.key:
		rl, rr := t.split(n.right, k)
		return t.rebuild(n, n.left, rl), rr
	default:
		return n.left, n.right
	}
}

// join is the transient counterpart of the shared join: the descent
// order (and therefore the resulting canonical shape) is identical, but
// spine nodes owned by this transient are re-pointed in place and copies
// come from the slab arena.
func (t *Transient[V]) join(l, r *node[V]) *node[V] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case higher(l.pri, l.key, r.pri, r.key):
		return t.rebuild(l, l.left, t.join(l.right, r))
	default:
		return t.rebuild(r, t.join(l, r.left), r.right)
	}
}

// Freeze finalizes the transient into a persistent Map and retires the
// owner token: the nodes become immutable, exactly like nodes built by
// the persistent operations, and their Merkle digests are computed
// lazily by the first digest walk. The transient must not be used
// afterwards (operations panic).
func (t *Transient[V]) Freeze() Map[V] {
	t.live()
	t.settle()
	m := Map[V]{root: t.root, seed: t.ph.seed}
	t.tok = nil
	t.root = nil
	t.slab = nil
	return m
}
