package pmap

// Rebuild derives a new map from m by an in-order per-entry transform,
// exploiting one fact the generic builders cannot: the output's key set
// is the input's (minus deletions). The result therefore reuses m's
// keys, priorities, and tree shape wholesale — no key re-encoding, no
// priority hashing, no comparisons — and any subtree whose entries all
// come back unchanged is shared by pointer, cached digests included.
// Transformed nodes come from slab arenas like the Transient's. Costs:
// O(n) for the walk and the f calls, but allocation only O(changed) +
// O(deleted · log n) (each deletion joins its children and path-copies
// its ancestors).
//
// f is called once per entry in ascending key order and returns the
// replacement value, keep=false to delete the entry, and changed=false
// to reuse the stored value (out is then ignored). A non-nil error
// aborts the walk.
//
// Shape note: kept nodes preserve their key and priority, and deletions
// splice subtrees with the same priority-directed join the persistent
// Delete uses, so the result is exactly the canonical treap of the
// surviving key set under m's seed — Rebuild is indistinguishable from
// building the same contents any other way.
func Rebuild[V any](m Map[V], f func(k string, v V) (out V, keep, changed bool, err error)) (Map[V], error) {
	var slab []node[V]
	slabCap := 0
	alloc := func(src *node[V], v V, l, r *node[V]) *node[V] {
		if len(slab) == 0 {
			if slabCap < slabMin {
				slabCap = slabMin
			}
			slab = make([]node[V], slabCap)
			if slabCap < slabMax {
				slabCap *= 2
			}
		}
		n := &slab[0]
		slab = slab[1:]
		n.key, n.val, n.pri, n.left, n.right = src.key, v, src.pri, l, r
		n.size = size(l) + size(r) + 1
		return n
	}
	// walk returns the rebuilt subtree plus whether it is the input
	// subtree unchanged (shared by pointer).
	var walk func(n *node[V]) (*node[V], bool, error)
	walk = func(n *node[V]) (*node[V], bool, error) {
		if n == nil {
			return nil, true, nil
		}
		l, lsame, err := walk(n.left)
		if err != nil {
			return nil, false, err
		}
		v, keep, changed, err := f(n.key, n.val)
		if err != nil {
			return nil, false, err
		}
		r, rsame, err := walk(n.right)
		if err != nil {
			return nil, false, err
		}
		if !keep {
			return join(l, r), false, nil
		}
		if lsame && rsame && !changed {
			return n, true, nil
		}
		if !changed {
			v = n.val
		}
		return alloc(n, v, l, r), false, nil
	}
	root, _, err := walk(m.root)
	if err != nil {
		return Map[V]{}, err
	}
	return Map[V]{root: root, seed: m.seed}, nil
}
