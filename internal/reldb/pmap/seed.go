package pmap

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
)

// Keyed tree priorities: by default a node's heap priority is the
// unkeyed SHA-256 of its key, so anyone who controls key bytes can grind
// offline for priority patterns that skew the treap (a performance
// degradation, never an integrity one — digests commit to content
// regardless of shape). A Seed replaces that derivation with
// HMAC-SHA-256 under a per-map secret: without the secret the priorities
// are unpredictable, so grinding requires the secret itself. The price
// is that tree shape becomes seed-specific — two maps agree on shape
// (and hence on Merkle digests) only when they hold the same entries
// AND the same seed, which is exactly what the sharing layer wants: the
// seed is a per-share secret, every replica of one share uses it, and
// replicas of the same share still converge to identical shapes while
// outsiders cannot predict them.

// hmacBlockSize is SHA-256's block size (the HMAC pad width).
const hmacBlockSize = 64

// Seed derives keyed treap priorities via HMAC-SHA-256. A nil *Seed
// means unkeyed priorities (plain SHA-256 of the key). Seeds are
// immutable after construction and safe for concurrent use.
type Seed struct {
	// secret is the caller's key material, kept for equality checks
	// (replicas compare secrets, not pad blocks).
	secret []byte
	// ipad and opad are the precomputed HMAC pad blocks, so each
	// priority derivation is two SHA-256 runs with no per-call key prep.
	ipad, opad [hmacBlockSize]byte
}

// NewSeed builds a Seed from the given secret. An empty secret returns
// nil (unkeyed priorities), so callers can plumb an optional secret
// without branching.
func NewSeed(secret []byte) *Seed {
	if len(secret) == 0 {
		return nil
	}
	s := &Seed{secret: append([]byte(nil), secret...)}
	key := s.secret
	if len(key) > hmacBlockSize {
		sum := sha256.Sum256(key)
		key = sum[:]
	}
	for i := 0; i < hmacBlockSize; i++ {
		var b byte
		if i < len(key) {
			b = key[i]
		}
		s.ipad[i] = b ^ 0x36
		s.opad[i] = b ^ 0x5c
	}
	return s
}

// Secret returns the seed's key material (read-only; callers must not
// mutate it). Nil receivers return nil.
func (s *Seed) Secret() []byte {
	if s == nil {
		return nil
	}
	return s.secret
}

// Matches reports whether the seed was built from the given secret; a
// nil seed matches only the empty secret.
func (s *Seed) Matches(secret []byte) bool {
	if s == nil {
		return len(secret) == 0
	}
	return len(s.secret) == len(secret) && subtle.ConstantTimeCompare(s.secret, secret) == 1
}

// prio derives the heap priority of k: HMAC-SHA-256(secret, k) for a
// seeded map, plain SHA-256(k) otherwise (the two constructions also
// disagree on every key, so mixing seeded and unseeded nodes in one
// tree is structurally impossible). Bulk builders reuse a seedHasher
// instead; this per-call form serves the persistent one-off mutations.
func (s *Seed) prio(k string) uint64 {
	h := s.hasher()
	return h.prio(k)
}

// seedHasher derives keyed priorities with a reusable scratch buffer,
// so an O(n) bulk build (transient appends, reseeding) performs no
// per-key allocations beyond the buffer's one-time growth. Single-owner
// like the Transient that embeds it.
type seedHasher struct {
	seed *Seed
	buf  []byte
}

func (s *Seed) hasher() seedHasher { return seedHasher{seed: s} }

func (h *seedHasher) prio(k string) uint64 {
	if h.seed == nil {
		return prio(k)
	}
	h.buf = append(h.buf[:0], h.seed.ipad[:]...)
	h.buf = append(h.buf, k...)
	inner := sha256.Sum256(h.buf)
	h.buf = append(h.buf[:0], h.seed.opad[:]...)
	h.buf = append(h.buf, inner[:]...)
	d := sha256.Sum256(h.buf)
	return binary.BigEndian.Uint64(d[:8])
}
