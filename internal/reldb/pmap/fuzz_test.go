package pmap

import (
	"fmt"
	"sort"
	"testing"
)

// FuzzPmapOps drives an arbitrary operation sequence decoded from the
// fuzz input against the treap and a plain-map reference model, checking
// full agreement after every step plus — after the whole sequence — the
// structural invariants, iteration order, persistence of a mid-sequence
// snapshot, and the cached Merkle root against a from-scratch recompute
// over the reference contents (which doubles as a canonicity check: the
// rebuild arrives at the same root through FromSorted).
//
// Input encoding: ops are consumed three bytes at a time as
// (opcode, key, value); the key space is deliberately small (64 keys) so
// random inputs collide often and exercise replace/delete paths.
func FuzzPmapOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 1, 3, 2, 1, 0})
	f.Add([]byte{
		0, 10, 1, 0, 20, 2, 0, 30, 3, 0, 40, 4,
		2, 20, 0, 3, 30, 0, 0, 20, 9, 1, 50, 5,
	})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var m Map[int]
		ref := make(map[string]int)
		var snap Map[int]
		snapRef := make(map[string]int)
		snapAt := len(ops) / 2

		for i := 0; i+2 < len(ops); i += 3 {
			if i >= snapAt && snap.Len() == 0 && len(snapRef) == 0 && m.Len() > 0 {
				snap = m // O(1) snapshot; must stay frozen below
				for k, v := range ref {
					snapRef[k] = v
				}
			}
			k := fmt.Sprintf("k%02d", int(ops[i+1])%64)
			v := int(ops[i+2])
			switch ops[i] % 4 {
			case 0, 1:
				var existed bool
				m, existed = m.Set(k, v)
				if _, refEx := ref[k]; existed != refEx {
					t.Fatalf("op %d: Set(%q) existed=%v want %v", i, k, existed, refEx)
				}
				ref[k] = v
			case 2:
				var existed bool
				m, existed = m.Delete(k)
				if _, refEx := ref[k]; existed != refEx {
					t.Fatalf("op %d: Delete(%q) existed=%v want %v", i, k, existed, refEx)
				}
				delete(ref, k)
			case 3:
				got, ok := m.Get(k)
				want, refOK := ref[k]
				if ok != refOK || (ok && got != want) {
					t.Fatalf("op %d: Get(%q)=%d,%v want %d,%v", i, k, got, ok, want, refOK)
				}
			}
		}

		if m.Len() != len(ref) {
			t.Fatalf("Len=%d want %d", m.Len(), len(ref))
		}
		var keys []string
		var vals []int
		m.Ascend(func(k string, v int) bool { keys = append(keys, k); vals = append(vals, v); return true })
		if !sort.StringsAreSorted(keys) {
			t.Fatal("iteration out of order")
		}
		for i, k := range keys {
			if ref[k] != vals[i] {
				t.Fatalf("content mismatch at %q", k)
			}
		}
		// Structural invariants (BST + heap + sizes + stored priorities).
		checkInvariants(t, m)

		// The cached Merkle root must equal a from-scratch recompute over
		// the reference contents — built by the *other* construction path.
		rebuilt := FromSorted(keys, vals)
		if m.MerkleRoot(testLeaf) != rebuilt.MerkleRoot(testLeaf) {
			t.Fatal("Merkle root diverges from a from-scratch rebuild of the same contents")
		}

		// The mid-sequence snapshot must be exactly as it was.
		if snap.Len() != len(snapRef) {
			t.Fatalf("snapshot len changed: %d want %d", snap.Len(), len(snapRef))
		}
		snap.Ascend(func(k string, v int) bool {
			if snapRef[k] != v {
				t.Fatalf("snapshot entry %q mutated", k)
			}
			return true
		})
	})
}
