package pmap

import (
	"errors"
	"fmt"
)

// Content-addressed export/import: the treap is already a Merkle DAG —
// every subtree carries a canonical digest, and the digest of a node
// commits to its entry plus both child digests. That makes the map
// directly persistable as a set of (digest → node record) facts:
//
//   - ExportNodes walks the tree and emits one record per node,
//     pruning whole subtrees the consumer already holds (skip reports
//     digest membership), so persisting a k-edit descendant of an
//     already-persisted map emits only the O(k log n) fresh nodes;
//   - FromExported rebuilds the map from the root digest by fetching
//     records, recomputing priorities from the seed and sizes from the
//     children — nothing structural is trusted from the records, and
//     the digest caches are left empty so the caller's subsequent
//     MerkleRoot recomputes (and thereby verifies) the full tree
//     against the expected root.
//
// Because the treap shape is a pure function of the key set (and seed),
// the unique tree hashing to a given root is the canonical one, so a
// rebuilt map whose recomputed root matches is bit-identical to the
// exported original.

// ExportedNode is one node of the content-addressed DAG: the node's own
// subtree digest, its entry, and the digests of its children (the
// all-zero Hash denotes an empty child).
type ExportedNode[V any] struct {
	Digest Hash
	Key    string
	Val    V
	Left   Hash
	Right  Hash
}

// ExportNodes walks the map bottom-up (children before parents) and
// calls emit for every node whose subtree digest is not already known
// to the consumer. skip reports whether a subtree digest is already
// held; when it returns true the entire subtree is pruned — the
// structural-sharing argument that makes Diff cheap makes incremental
// persistence cheap. A nil skip exports everything. emit returning
// false aborts the walk; ExportNodes reports whether the walk ran to
// completion. Digests are computed (and cached) with leaf as needed.
func ExportNodes[V any](m Map[V], leaf LeafFunc[V], skip func(Hash) bool, emit func(ExportedNode[V]) bool) bool {
	var walk func(n *node[V]) bool
	walk = func(n *node[V]) bool {
		if n == nil {
			return true
		}
		d := digest(n, leaf)
		if skip != nil && skip(d) {
			return true
		}
		if !walk(n.left) || !walk(n.right) {
			return false
		}
		return emit(ExportedNode[V]{
			Digest: d,
			Key:    n.key,
			Val:    n.val,
			Left:   digest(n.left, leaf),
			Right:  digest(n.right, leaf),
		})
	}
	return walk(m.root)
}

// ErrMissingNode is returned by FromExported when fetch cannot supply a
// referenced digest — the persisted DAG is incomplete (e.g. a torn log
// lost interior records).
var ErrMissingNode = errors.New("pmap: exported node missing")

// ErrMalformedDAG is returned by FromExported when the fetched records
// do not describe a tree of the expected size (a cycle, a shared
// subtree counted twice, or a record set larger than declared).
var ErrMalformedDAG = errors.New("pmap: exported DAG malformed")

// FromExported rebuilds the map rooted at the given digest by fetching
// node records. The all-zero root digest yields the empty map. maxNodes
// bounds the total nodes materialized (the caller knows the expected
// entry count); exceeding it — which any cycle in a corrupt record set
// would — fails with ErrMalformedDAG rather than recursing forever.
//
// Structure is NOT trusted: priorities are rederived from seed, subtree
// sizes recomputed from children, and digest caches left empty. Callers
// MUST verify the rebuilt map by recomputing its MerkleRoot and
// comparing against the expected root; only then is the map known to be
// the canonical original.
func FromExported[V any](seed *Seed, root Hash, maxNodes int, fetch func(Hash) (ExportedNode[V], bool)) (Map[V], error) {
	visited := 0
	h := seed.hasher()
	var build func(d Hash) (*node[V], error)
	build = func(d Hash) (*node[V], error) {
		if d == (Hash{}) {
			return nil, nil
		}
		if visited++; visited > maxNodes {
			return nil, fmt.Errorf("%w: more than %d nodes reachable from root", ErrMalformedDAG, maxNodes)
		}
		rec, ok := fetch(d)
		if !ok {
			return nil, fmt.Errorf("%w: digest %x", ErrMissingNode, d[:8])
		}
		l, err := build(rec.Left)
		if err != nil {
			return nil, err
		}
		r, err := build(rec.Right)
		if err != nil {
			return nil, err
		}
		return mk(l, rec.Key, h.prio(rec.Key), rec.Val, r), nil
	}
	n, err := build(root)
	if err != nil {
		return Map[V]{}, err
	}
	return Map[V]{root: n, seed: seed}, nil
}
