package pmap

import "medshare/internal/merkle"

// The Merkle layer: every node lazily caches the digest of its subtree,
//
//	dig(n) = merkle.HashTreeNode(dig(n.left), leaf(n.key, n.val), dig(n.right))
//
// with the empty subtree digesting to the all-zero hash. Because the
// treap shape is a pure function of the key set, the root digest is a
// canonical commitment to the map's contents: equal content ⇔ equal
// root, independent of mutation history. Path copying replaces exactly
// the nodes whose digests change, so after a k-edit delta the next
// MerkleRoot recomputes only O(k log n) fresh nodes; everything shared
// with older snapshots keeps its cached digest.

// digest returns (computing and caching as needed) the subtree digest.
func digest[V any](n *node[V], leaf LeafFunc[V]) Hash {
	if n == nil {
		return Hash{}
	}
	if p := n.dig.Load(); p != nil {
		return *p
	}
	d := merkle.HashTreeNode(digest(n.left, leaf), leaf(n.key, n.val), digest(n.right, leaf))
	n.dig.Store(&d)
	return d
}

// MerkleRoot returns the canonical Merkle digest of the whole map. The
// empty map's root is the all-zero hash.
func (m Map[V]) MerkleRoot(leaf LeafFunc[V]) Hash {
	return digest(m.root, leaf)
}

// CachedRoot returns the Merkle root and true when it is available
// without hashing anything: the empty map, or a root whose digest a
// previous MerkleRoot call (on this map or any map sharing its root
// node) already cached.
func (m Map[V]) CachedRoot() (Hash, bool) {
	if m.root == nil {
		return Hash{}, true
	}
	if p := m.root.dig.Load(); p != nil {
		return *p, true
	}
	return Hash{}, false
}

// ProofStep is one ancestor on the path from a proven entry to the root.
type ProofStep struct {
	// Entry is the ancestor's own entry digest (leaf(key, val)).
	Entry Hash `json:"entry"`
	// Other is the digest of the ancestor's other-side subtree.
	Other Hash `json:"other"`
	// PathLeft reports whether the proven subtree is the ancestor's LEFT
	// child.
	PathLeft bool `json:"pathLeft"`
}

// Proof is a membership proof for one entry of the map: the entry's own
// node's child digests plus the ancestor chain up to the root. Verifying
// recomputes the root from the claimed entry digest, so a proof binds
// the entry's content (and, through the leaf function, its key) to the
// root commitment.
type Proof struct {
	// Left and Right are the proven entry's child subtree digests.
	Left  Hash `json:"left"`
	Right Hash `json:"right"`
	// Steps are the ancestors from the entry's parent up to the root.
	Steps []ProofStep `json:"steps,omitempty"`
}

// Prove builds a membership proof for the entry under k.
func (m Map[V]) Prove(k string, leaf LeafFunc[V]) (Proof, bool) {
	var path []*node[V]
	n := m.root
	for n != nil && n.key != k {
		path = append(path, n)
		if k < n.key {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return Proof{}, false
	}
	pr := Proof{Left: digest(n.left, leaf), Right: digest(n.right, leaf)}
	for i := len(path) - 1; i >= 0; i-- {
		anc := path[i]
		left := k < anc.key
		other := anc.left
		if left {
			other = anc.right
		}
		pr.Steps = append(pr.Steps, ProofStep{
			Entry:    leaf(anc.key, anc.val),
			Other:    digest(other, leaf),
			PathLeft: left,
		})
	}
	return pr, true
}

// VerifyProof checks that an entry with the given leaf digest is
// committed to by root according to the proof.
func VerifyProof(root Hash, entry Hash, p Proof) bool {
	h := merkle.HashTreeNode(p.Left, entry, p.Right)
	for _, s := range p.Steps {
		if s.PathLeft {
			h = merkle.HashTreeNode(h, s.Entry, s.Other)
		} else {
			h = merkle.HashTreeNode(s.Other, s.Entry, h)
		}
	}
	return h == root
}

// ChildRef summarizes one child subtree of a Summary node. A Size of 0
// means the child is empty (Key and Digest are then meaningless).
type ChildRef struct {
	Key    string
	Digest Hash
	Size   int
}

// Summary describes one interior node for structural anti-entropy: the
// node's key plus digests, sizes, and root keys of both child subtrees.
// A peer walking another's tree top-down compares child digests against
// its own content and descends only into subtrees that differ.
type Summary struct {
	Key         string
	Left, Right ChildRef
}

// RootKey returns the key of the tree's root node, the starting point of
// a structural sync walk.
func (m Map[V]) RootKey() (string, bool) {
	if m.root == nil {
		return "", false
	}
	return m.root.key, true
}

// find returns the node holding k.
func (m Map[V]) find(k string) *node[V] {
	n := m.root
	for n != nil {
		switch {
		case k < n.key:
			n = n.left
		case k > n.key:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

func childRef[V any](n *node[V], leaf LeafFunc[V]) ChildRef {
	if n == nil {
		return ChildRef{}
	}
	return ChildRef{Key: n.key, Digest: digest(n, leaf), Size: n.size}
}

// SummaryAt returns the summary and value of the node holding k.
func (m Map[V]) SummaryAt(k string, leaf LeafFunc[V]) (Summary, V, bool) {
	n := m.find(k)
	if n == nil {
		var zero V
		return Summary{}, zero, false
	}
	return Summary{
		Key:   n.key,
		Left:  childRef(n.left, leaf),
		Right: childRef(n.right, leaf),
	}, n.val, true
}

// AscendSubtree calls fn for every entry of the subtree rooted at the
// node holding k, in ascending key order, until fn returns false. It
// reports whether k was found.
func (m Map[V]) AscendSubtree(k string, fn func(k string, v V) bool) bool {
	n := m.find(k)
	if n == nil {
		return false
	}
	n.ascend(fn)
	return true
}

// DigestIndex maps every subtree digest of one map to its subtree — the
// receiver side of structural anti-entropy uses it to recognize remote
// subtrees it already holds (equal digest ⇒ identical content, and by
// shape canonicity an identical subtree) and graft its local entries
// instead of transferring them.
type DigestIndex[V any] struct {
	byDig map[Hash]*node[V]
}

// NewDigestIndex builds the index, computing (and caching) any missing
// subtree digests — O(n) the first time, O(n) map inserts thereafter.
func NewDigestIndex[V any](m Map[V], leaf LeafFunc[V]) *DigestIndex[V] {
	ix := &DigestIndex[V]{byDig: make(map[Hash]*node[V], m.Len())}
	var walk func(n *node[V])
	walk = func(n *node[V]) {
		if n == nil {
			return
		}
		ix.byDig[digest(n, leaf)] = n
		walk(n.left)
		walk(n.right)
	}
	walk(m.root)
	return ix
}

// Has reports whether some subtree of the indexed map digests to d.
func (ix *DigestIndex[V]) Has(d Hash) bool {
	_, ok := ix.byDig[d]
	return ok
}

// Size returns the entry count of the subtree digesting to d.
func (ix *DigestIndex[V]) Size(d Hash) (int, bool) {
	n, ok := ix.byDig[d]
	if !ok {
		return 0, false
	}
	return n.size, true
}

// Ascend walks the subtree digesting to d in ascending key order. It
// reports whether the digest was found.
func (ix *DigestIndex[V]) Ascend(d Hash, fn func(k string, v V) bool) bool {
	n, ok := ix.byDig[d]
	if !ok {
		return false
	}
	n.ascend(fn)
	return true
}
