package pmap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"medshare/internal/merkle"
)

// testLeaf digests an entry as a domain-separated leaf over "key=value".
func testLeaf(k string, v int) Hash {
	return merkle.HashLeaf([]byte(fmt.Sprintf("%s=%d", k, v)))
}

// TestMerkleRootCanonical: the root digest must be a pure function of
// the contents — identical across build histories, different for
// different contents.
func TestMerkleRootCanonical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make(map[string]int)
		var m Map[int]
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%03d", rng.Intn(90))
			if rng.Intn(4) == 0 {
				m, _ = m.Delete(k)
				delete(ref, k)
			} else {
				v := rng.Intn(50)
				m, _ = m.Set(k, v)
				ref[k] = v
			}
		}
		// Rebuild the same contents from scratch via FromSorted.
		var keys []string
		var vals []int
		var rebuilt Map[int]
		m.Ascend(func(k string, v int) bool { keys = append(keys, k); vals = append(vals, v); return true })
		rebuilt = FromSorted(keys, vals)
		if m.MerkleRoot(testLeaf) != rebuilt.MerkleRoot(testLeaf) {
			t.Logf("seed %d: root depends on build history", seed)
			return false
		}
		// Any single-entry perturbation must change the root.
		if len(keys) > 0 {
			i := rng.Intn(len(keys))
			changed, _ := m.Set(keys[i], vals[i]+1)
			if changed.MerkleRoot(testLeaf) == m.MerkleRoot(testLeaf) {
				t.Logf("seed %d: value change did not change root", seed)
				return false
			}
			removed, _ := m.Delete(keys[i])
			if removed.MerkleRoot(testLeaf) == m.MerkleRoot(testLeaf) {
				t.Logf("seed %d: deletion did not change root", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMerkleRootIncrementalCost: after one edit of a large hashed map,
// recomputing the root must touch only the fresh O(log n) path —
// observed through the leaf-function call count.
func TestMerkleRootIncrementalCost(t *testing.T) {
	var m Map[int]
	const n = 4096
	for i := 0; i < n; i++ {
		m, _ = m.Set(fmt.Sprintf("k%05d", i), i)
	}
	m.MerkleRoot(testLeaf) // warm the cache
	m2, _ := m.Set("k02048", -1)
	calls := 0
	counting := func(k string, v int) Hash { calls++; return testLeaf(k, v) }
	root2 := m2.MerkleRoot(counting)
	// Only the path-copied nodes lack digests; each calls leaf once.
	if calls > 64 {
		t.Fatalf("root update after one edit invoked leaf %d times (want O(log n))", calls)
	}
	// And the incremental result must agree with a cold recompute.
	var keys []string
	var vals []int
	m2.Ascend(func(k string, v int) bool { keys = append(keys, k); vals = append(vals, v); return true })
	if root2 != FromSorted(keys, vals).MerkleRoot(testLeaf) {
		t.Fatal("incrementally updated root diverges from cold recompute")
	}
	if cached, ok := m2.CachedRoot(); !ok || cached != root2 {
		t.Fatal("CachedRoot does not report the computed root")
	}
	if _, ok := (Map[int]{}).CachedRoot(); !ok {
		t.Fatal("empty map root should always be available")
	}
}

// TestProveVerify: proofs for every entry round-trip against the root;
// wrong entry digests, wrong keys, and tampered steps are rejected.
func TestProveVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var m Map[int]
	const n = 257
	for i := 0; i < n; i++ {
		m, _ = m.Set(fmt.Sprintf("k%04d", i), rng.Intn(1000))
	}
	root := m.MerkleRoot(testLeaf)
	m.Ascend(func(k string, v int) bool {
		p, ok := m.Prove(k, testLeaf)
		if !ok {
			t.Fatalf("Prove(%q) failed", k)
		}
		if !VerifyProof(root, testLeaf(k, v), p) {
			t.Fatalf("valid proof for %q rejected", k)
		}
		if VerifyProof(root, testLeaf(k, v+1), p) {
			t.Fatalf("tampered value accepted for %q", k)
		}
		if VerifyProof(root, testLeaf(k+"x", v), p) {
			t.Fatalf("tampered key accepted for %q", k)
		}
		return true
	})
	if _, ok := m.Prove("absent", testLeaf); ok {
		t.Fatal("proof produced for absent key")
	}
	// Tampering with the proof itself must be rejected.
	p, _ := m.Prove("k0100", testLeaf)
	v, _ := m.Get("k0100")
	leaf := testLeaf("k0100", v)
	if len(p.Steps) == 0 {
		t.Fatal("expected a non-root entry for tamper tests")
	}
	flip := p
	flip.Steps = append([]ProofStep(nil), p.Steps...)
	flip.Steps[0].PathLeft = !flip.Steps[0].PathLeft
	if VerifyProof(root, leaf, flip) {
		t.Fatal("direction-flipped proof accepted")
	}
	trunc := p
	trunc.Steps = p.Steps[:len(p.Steps)-1]
	if VerifyProof(root, leaf, trunc) {
		t.Fatal("truncated proof accepted")
	}
	spliced := p
	spliced.Left, spliced.Right = p.Right, p.Left
	if p.Left != p.Right && VerifyProof(root, leaf, spliced) {
		t.Fatal("child-swapped proof accepted")
	}
}

// TestSummaryAndDigestIndex: the anti-entropy accessors must agree with
// each other — a child ref's digest resolves through a DigestIndex to
// exactly the entries AscendSubtree yields for the child's key.
func TestSummaryAndDigestIndex(t *testing.T) {
	var m Map[int]
	for i := 0; i < 500; i++ {
		m, _ = m.Set(fmt.Sprintf("k%04d", i), i*7)
	}
	ix := NewDigestIndex(m, testLeaf)
	rootKey, ok := m.RootKey()
	if !ok {
		t.Fatal("no root key")
	}
	var walk func(k string)
	walk = func(k string) {
		sum, v, ok := m.SummaryAt(k, testLeaf)
		if !ok {
			t.Fatalf("SummaryAt(%q) missing", k)
		}
		if got, _ := m.Get(k); got != v {
			t.Fatalf("SummaryAt(%q) value mismatch", k)
		}
		for _, c := range []ChildRef{sum.Left, sum.Right} {
			if c.Size == 0 {
				continue
			}
			if n, ok := ix.Size(c.Digest); !ok || n != c.Size {
				t.Fatalf("digest index size mismatch for child %q", c.Key)
			}
			var fromIx, fromWalk []string
			ix.Ascend(c.Digest, func(k string, _ int) bool { fromIx = append(fromIx, k); return true })
			m.AscendSubtree(c.Key, func(k string, _ int) bool { fromWalk = append(fromWalk, k); return true })
			if len(fromIx) != len(fromWalk) {
				t.Fatalf("index/subtree walk length mismatch at %q", c.Key)
			}
			for i := range fromIx {
				if fromIx[i] != fromWalk[i] {
					t.Fatalf("index/subtree walk mismatch at %q", c.Key)
				}
			}
			walk(c.Key)
		}
	}
	walk(rootKey)
	if ix.Has(Hash{1}) {
		t.Fatal("index matched a bogus digest")
	}
}
