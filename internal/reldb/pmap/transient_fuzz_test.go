package pmap

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"
)

// FuzzTransientOps drives an arbitrary operation sequence decoded from
// the fuzz input against a Transient and a plain-map reference model.
// The first input byte selects the configuration — bit0 keys the
// priorities with a seed, bit1 adopts a prebuilt persistent map instead
// of starting empty — and the rest is consumed three bytes at a time as
// (opcode, key, value) over a deliberately small key space. After the
// sequence the frozen map must agree with the reference on contents,
// satisfy every structural invariant, and digest to the same Merkle
// root as a FromSorted rebuild of the reference under the same seed
// (transient building is observationally identical to any other
// construction path); in adopt mode the base map must additionally be
// exactly as it was (in-place transient mutation never leaks into
// shared structure).
func FuzzTransientOps(f *testing.F) {
	f.Add([]byte{0})
	// Ascending run on the spine fast path, then out-of-order churn.
	f.Add([]byte{0,
		0, 1, 1, 0, 2, 2, 0, 3, 3, 0, 4, 4, 0, 5, 5,
		2, 3, 0, 1, 2, 9, 0, 6, 6,
	})
	// Seeded priorities, set/delete churn.
	f.Add([]byte{1,
		1, 10, 1, 1, 20, 2, 1, 10, 3, 2, 10, 0, 1, 30, 4, 3, 20, 0,
	})
	// Adopt a prebuilt map, mutate through it, delete adopted entries.
	f.Add([]byte{3,
		1, 0, 7, 2, 3, 0, 1, 40, 8, 2, 6, 0, 3, 9, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		mode, ops := data[0], data[1:]
		var seed *Seed
		if mode&1 != 0 {
			seed = NewSeed([]byte("fuzz-transient-seed"))
		}
		key := func(b byte) string { return fmt.Sprintf("k%02d", int(b)%64) }

		ref := make(map[string]int)
		var tr *Transient[int]
		var base Map[int]
		baseRef := make(map[string]int)
		if mode&2 != 0 {
			base = NewSeeded[int](seed)
			for i := 0; i < 20; i++ {
				k := key(byte(i * 3))
				base, _ = base.Set(k, i)
				baseRef[k] = i
				ref[k] = i
			}
			tr = base.Transient()
		} else {
			tr = NewTransient[int](seed)
		}

		for i := 0; i+2 < len(ops); i += 3 {
			k, v := key(ops[i+1]), int(ops[i+2])
			_, refEx := ref[k]
			switch ops[i] % 5 {
			case 0:
				added := tr.Insert(k, v)
				if added == refEx {
					t.Fatalf("op %d: Insert(%q) added=%v, present=%v", i, k, added, refEx)
				}
				if added {
					ref[k] = v
				}
			case 1, 2:
				existed := tr.Set(k, v)
				if existed != refEx {
					t.Fatalf("op %d: Set(%q) existed=%v want %v", i, k, existed, refEx)
				}
				ref[k] = v
			case 3:
				existed := tr.Delete(k)
				if existed != refEx {
					t.Fatalf("op %d: Delete(%q) existed=%v want %v", i, k, existed, refEx)
				}
				delete(ref, k)
			case 4:
				got, ok := tr.Get(k)
				want, refOK := ref[k]
				if ok != refOK || (ok && got != want) {
					t.Fatalf("op %d: Get(%q)=%d,%v want %d,%v", i, k, got, ok, want, refOK)
				}
			}
			if tr.Len() != len(ref) {
				t.Fatalf("op %d: Len=%d want %d", i, tr.Len(), len(ref))
			}
		}

		m := tr.Freeze()
		if m.Len() != len(ref) {
			t.Fatalf("frozen Len=%d want %d", m.Len(), len(ref))
		}
		var keys []string
		var vals []int
		m.Ascend(func(k string, v int) bool { keys = append(keys, k); vals = append(vals, v); return true })
		if !sort.StringsAreSorted(keys) {
			t.Fatal("iteration out of order")
		}
		for i, k := range keys {
			if ref[k] != vals[i] {
				t.Fatalf("content mismatch at %q", k)
			}
		}
		checkInvariants(t, m)

		// Digest equality against the reference built by the other path:
		// the transient is observationally identical to FromSorted.
		rebuilt := FromSortedSeeded(seed, keys, vals)
		if m.MerkleRoot(testLeaf) != rebuilt.MerkleRoot(testLeaf) {
			t.Fatal("transient Merkle root diverges from a FromSorted rebuild of the same contents")
		}

		// Adopted structure must be untouched.
		if mode&2 != 0 {
			if base.Len() != len(baseRef) {
				t.Fatalf("adopted base len changed: %d want %d", base.Len(), len(baseRef))
			}
			base.Ascend(func(k string, v int) bool {
				if baseRef[k] != v {
					t.Fatalf("adopted base entry %q mutated", k)
				}
				return true
			})
			checkInvariants(t, base)
		}
	})
}

// TestSeedPrioIsHMAC pins the priority derivation to real HMAC-SHA-256:
// the hand-rolled two-pass construction in Seed.prio must agree with
// crypto/hmac for short, block-length, and over-block keys.
func TestSeedPrioIsHMAC(t *testing.T) {
	keys := [][]byte{
		[]byte("k"),
		[]byte("a 32-byte secret 0123456789abcd!"),
		bytes.Repeat([]byte{0x5a}, 64),
		bytes.Repeat([]byte{0xa5}, 100), // > block size: pre-hashed
	}
	msgs := []string{"", "x", "row-key-0042", string(bytes.Repeat([]byte{0}, 200))}
	for _, k := range keys {
		s := NewSeed(k)
		for _, m := range msgs {
			mac := hmac.New(sha256.New, k)
			mac.Write([]byte(m))
			want := binary.BigEndian.Uint64(mac.Sum(nil)[:8])
			if got := s.prio(m); got != want {
				t.Fatalf("prio(%q) under %d-byte key = %x, want HMAC %x", m, len(k), got, want)
			}
		}
	}
	// The nil seed is plain SHA-256 of the key.
	var nilSeed *Seed
	d := sha256.Sum256([]byte("plain"))
	if nilSeed.prio("plain") != binary.BigEndian.Uint64(d[:8]) {
		t.Fatal("nil seed must derive unkeyed SHA-256 priorities")
	}
	if NewSeed(nil) != nil || NewSeed([]byte{}) != nil {
		t.Fatal("empty secrets must yield the nil (unkeyed) seed")
	}
	if !NewSeed([]byte("s")).Matches([]byte("s")) || NewSeed([]byte("s")).Matches([]byte("t")) || !nilSeed.Matches(nil) {
		t.Fatal("Matches misbehaves")
	}
}
