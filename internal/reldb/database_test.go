package reldb

import (
	"errors"
	"sync"
	"testing"
)

func TestDatabaseCreateGetDrop(t *testing.T) {
	db := NewDatabase("peer1")
	if db.Name() != "peer1" {
		t.Fatalf("name = %s", db.Name())
	}
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(patientSchema()); err == nil {
		t.Fatal("duplicate create should fail")
	}
	tbl, err := db.Table("patients")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "patients" {
		t.Fatalf("table name = %s", tbl.Name())
	}
	if !db.Has("patients") || db.Has("ghost") {
		t.Fatal("Has wrong")
	}
	if err := db.Drop("patients"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("patients"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
	if _, err := db.Table("patients"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
}

func TestDatabasePutTableReplaces(t *testing.T) {
	db := NewDatabase("d")
	a := MustNewTable(patientSchema())
	a.MustInsert(alice())
	db.PutTable(a)
	b := MustNewTable(patientSchema())
	db.PutTable(b)
	got, _ := db.Table("patients")
	if got.Len() != 0 {
		t.Fatal("PutTable did not replace")
	}
}

func TestDatabaseTableNamesSorted(t *testing.T) {
	db := NewDatabase("d")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s := patientSchema()
		s.Name = n
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	got := db.TableNames()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v", got)
		}
	}
}

func TestDatabaseWithTable(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	err := db.WithTable("patients", func(tbl *Table) error {
		return tbl.Insert(alice())
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := db.Table("patients")
	if got.Len() != 1 {
		t.Fatal("mutation lost")
	}
	if err := db.WithTable("ghost", func(*Table) error { return nil }); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
}

func TestDatabaseSnapshotIndependent(t *testing.T) {
	db := NewDatabase("d")
	tbl, _ := db.CreateTable(patientSchema())
	tbl.MustInsert(alice())
	snap := db.Snapshot()
	if err := db.WithTable("patients", func(tt *Table) error {
		return tt.Update(Row{I(1)}, map[string]Value{"age": I(99)})
	}); err != nil {
		t.Fatal(err)
	}
	st, _ := snap.Table("patients")
	got, _ := st.Get(Row{I(1)})
	if v, _ := got[3].Int(); v != 30 {
		t.Fatal("snapshot aliases live data")
	}
}

func TestDatabaseConcurrentAccess(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = db.WithTable("patients", func(tbl *Table) error {
					return tbl.Upsert(Row{I(int64(base*1000 + j)), S("p"), Null(), I(1)})
				})
				_, _ = db.Table("patients")
				_ = db.TableNames()
			}
		}(i)
	}
	wg.Wait()
	got, _ := db.Table("patients")
	if got.Len() != 8*50 {
		t.Fatalf("rows = %d, want %d", got.Len(), 8*50)
	}
}
