package reldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDatabaseCreateGetDrop(t *testing.T) {
	db := NewDatabase("peer1")
	if db.Name() != "peer1" {
		t.Fatalf("name = %s", db.Name())
	}
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(patientSchema()); err == nil {
		t.Fatal("duplicate create should fail")
	}
	tbl, err := db.Table("patients")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "patients" {
		t.Fatalf("table name = %s", tbl.Name())
	}
	if !db.Has("patients") || db.Has("ghost") {
		t.Fatal("Has wrong")
	}
	if err := db.Drop("patients"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("patients"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
	if _, err := db.Table("patients"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
}

func TestDatabasePutTableReplaces(t *testing.T) {
	db := NewDatabase("d")
	a := MustNewTable(patientSchema())
	a.MustInsert(alice())
	db.PutTable(a)
	b := MustNewTable(patientSchema())
	db.PutTable(b)
	got, _ := db.Table("patients")
	if got.Len() != 0 {
		t.Fatal("PutTable did not replace")
	}
}

func TestDatabaseTableNamesSorted(t *testing.T) {
	db := NewDatabase("d")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s := patientSchema()
		s.Name = n
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	got := db.TableNames()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v", got)
		}
	}
}

func TestDatabaseWithTable(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	err := db.WithTable("patients", func(tbl *Table) error {
		return tbl.Insert(alice())
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := db.Table("patients")
	if got.Len() != 1 {
		t.Fatal("mutation lost")
	}
	if err := db.WithTable("ghost", func(*Table) error { return nil }); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
}

// TestDatabaseWithTableAbortsOnError pins the atomic-commit contract: an
// error from fn discards every mutation fn made, not just the failing one.
func TestDatabaseWithTableAbortsOnError(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := db.WithTable("patients", func(tbl *Table) error {
		if err := tbl.Insert(alice()); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, _ := db.Table("patients")
	if got.Len() != 0 {
		t.Fatal("aborted commit leaked mutations")
	}
}

// TestDatabaseTableIsSnapshot pins the fix for the old API leak: the table
// returned by Table() is independent — mutating it never changes the
// database, and later commits never change it.
func TestDatabaseTableIsSnapshot(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	leaked, _ := db.Table("patients")
	leaked.MustInsert(alice()) // must not bypass the commit path
	got, _ := db.Table("patients")
	if got.Len() != 0 {
		t.Fatal("mutating a returned snapshot changed the database")
	}
	if err := db.WithTable("patients", func(tbl *Table) error {
		return tbl.Insert(alice())
	}); err != nil {
		t.Fatal(err)
	}
	if leaked.Len() != 1 {
		// leaked had its own insert; the committed one must not appear.
		t.Fatalf("snapshot observed a later commit: len=%d", leaked.Len())
	}
}

func TestDatabaseSnapshotIndependent(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.WithTable("patients", func(tbl *Table) error {
		return tbl.Insert(alice())
	}); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if err := db.WithTable("patients", func(tt *Table) error {
		return tt.Update(Row{I(1)}, map[string]Value{"age": I(99)})
	}); err != nil {
		t.Fatal(err)
	}
	st, _ := snap.Table("patients")
	got, _ := st.Get(Row{I(1)})
	if v, _ := got[3].Int(); v != 30 {
		t.Fatal("snapshot aliases live data")
	}
	// And the other direction: mutating the snapshot leaves the live
	// database untouched.
	if err := snap.WithTable("patients", func(tt *Table) error {
		return tt.Update(Row{I(1)}, map[string]Value{"age": I(7)})
	}); err != nil {
		t.Fatal(err)
	}
	lt, _ := db.Table("patients")
	lr, _ := lt.Get(Row{I(1)})
	if v, _ := lr[3].Int(); v != 99 {
		t.Fatal("snapshot mutation leaked into live database")
	}
}

func TestDatabaseConcurrentAccess(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = db.WithTable("patients", func(tbl *Table) error {
					return tbl.Upsert(Row{I(int64(base*1000 + j)), S("p"), Null(), I(1)})
				})
				_, _ = db.Table("patients")
				_ = db.TableNames()
			}
		}(i)
	}
	wg.Wait()
	got, _ := db.Table("patients")
	if got.Len() != 8*50 {
		t.Fatalf("rows = %d, want %d", got.Len(), 8*50)
	}
}

// TestDatabaseConcurrentPerTableWriters exercises parallel commits to
// disjoint tables plus concurrent structural changes (create) — the
// many-shares peer shape: every share commits to its own view table.
func TestDatabaseConcurrentPerTableWriters(t *testing.T) {
	db := NewDatabase("d")
	const tables = 8
	for i := 0; i < tables; i++ {
		s := patientSchema()
		s.Name = fmt.Sprintf("t%d", i)
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < tables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			for j := 0; j < 40; j++ {
				if err := db.WithTable(name, func(tbl *Table) error {
					return tbl.Upsert(Row{I(int64(j)), S("p"), Null(), I(1)})
				}); err != nil {
					t.Error(err)
					return
				}
				// Reads of a neighbouring table interleave with its writer.
				other := fmt.Sprintf("t%d", (i+1)%tables)
				tb, err := db.Table(other)
				if err != nil {
					t.Error(err)
					return
				}
				_ = tb.Len()
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < tables; i++ {
		tb, _ := db.Table(fmt.Sprintf("t%d", i))
		if tb.Len() != 40 {
			t.Fatalf("t%d rows = %d, want 40", i, tb.Len())
		}
	}
}

// TestDatabaseReplaceTableSerializes pins the read-modify-write
// contract: concurrent replacements that each derive a new table from
// the current one (the sharing layer's lens puts) must all land —
// snapshot-then-PutTable would lose updates here.
func TestDatabaseReplaceTableSerializes(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	const writers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				err := db.ReplaceTable("patients", func(cur *Table) (*Table, error) {
					// Derive a replacement from the current snapshot, the
					// way a lens put does.
					next := cur.Clone()
					if err := next.Insert(Row{I(int64(w*1000 + j)), S("p"), Null(), I(1)}); err != nil {
						return nil, err
					}
					return next, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, _ := db.Table("patients")
	if got.Len() != writers*rounds {
		t.Fatalf("rows = %d, want %d (lost update)", got.Len(), writers*rounds)
	}
	// An error aborts the replacement.
	boom := errors.New("boom")
	if err := db.ReplaceTable("patients", func(*Table) (*Table, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if err := db.ReplaceTable("ghost", func(c *Table) (*Table, error) { return c, nil }); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
}

// TestDatabaseConcurrentSnapshotConsistency checks that readers loading a
// snapshot mid-commit see either the old or the new state, never a torn
// one: each commit inserts two rows, so every observed length is even.
func TestDatabaseConcurrentSnapshotConsistency(t *testing.T) {
	db := NewDatabase("d")
	if _, err := db.CreateTable(patientSchema()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			_ = db.WithTable("patients", func(tbl *Table) error {
				if err := tbl.Insert(Row{I(int64(2 * j)), S("a"), Null(), I(1)}); err != nil {
					return err
				}
				return tbl.Insert(Row{I(int64(2*j + 1)), S("b"), Null(), I(1)})
			})
		}
		close(done)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				tb, err := db.Table("patients")
				if err != nil {
					t.Error(err)
					return
				}
				if tb.Len()%2 != 0 {
					t.Errorf("torn read: %d rows", tb.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
	tb, _ := db.Table("patients")
	if tb.Len() != 200 {
		t.Fatalf("rows = %d", tb.Len())
	}
}
