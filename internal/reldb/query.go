package reldb

import (
	"fmt"
)

// Project returns a new table containing only cols, in the given order,
// named name and keyed by key (see Schema.Project for key inference).
// Duplicate projected rows collapse to one (set semantics); two source rows
// that agree on the new key but disagree elsewhere are an error, because
// such a projection is not a function of the key and cannot serve as a
// well-behaved view.
func (t *Table) Project(name string, cols []string, key []string) (*Table, error) {
	ps, err := t.schema.Project(name, cols, key)
	if err != nil {
		return nil, err
	}
	out, err := NewTable(ps)
	if err != nil {
		return nil, err
	}
	out.Grow(len(t.rows))
	srcIdx := make([]int, len(cols))
	for i, c := range cols {
		srcIdx[i] = t.schema.ColumnIndex(c)
	}
	var keyBuf []byte
	for _, r := range t.rows {
		pr := make(Row, len(cols))
		for i, si := range srcIdx {
			pr[i] = r[si]
		}
		keyBuf = out.AppendKeyOf(keyBuf[:0], pr)
		if existing, ok := out.GetKeyBytes(keyBuf); ok {
			if !existing.Equal(pr) {
				return nil, fmt.Errorf("%w: projection %s is not functional on key %v", ErrSchemaInvalid, name, out.KeyValues(pr))
			}
			continue
		}
		if err := out.InsertOwned(pr); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Select returns a new table named name containing the rows matching pred.
func (t *Table) Select(name string, pred Predicate) (*Table, error) {
	out, err := NewTable(t.schema.Rename(name))
	if err != nil {
		return nil, err
	}
	out.Grow(len(t.rows))
	for _, r := range t.rows {
		ok, err := pred.Eval(t.schema, r)
		if err != nil {
			return nil, err
		}
		if ok {
			if err := out.InsertOwned(r); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// RenameColumns returns a copy of the table with columns renamed per the
// mapping old→new. Unmapped columns keep their names.
func (t *Table) RenameColumns(name string, mapping map[string]string) (*Table, error) {
	ns := t.schema.Rename(name)
	for old, nw := range mapping {
		i := ns.ColumnIndex(old)
		if i < 0 {
			return nil, fmt.Errorf("%w: %s (renaming in %s)", ErrNoSuchColumn, old, t.schema.Name)
		}
		ns.Columns[i].Name = nw
	}
	for i, k := range ns.Key {
		if nw, ok := mapping[k]; ok {
			ns.Key[i] = nw
		}
	}
	out, err := NewTable(ns)
	if err != nil {
		return nil, err
	}
	out.Grow(len(t.rows))
	for _, r := range t.rows {
		if err := out.InsertOwned(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NaturalJoin joins t with o on their shared column names. The result
// contains t's columns followed by o's non-shared columns; its key is the
// union of both keys (deduplicated, t's order first). Matching is hash-based
// on the shared columns.
func (t *Table) NaturalJoin(name string, o *Table) (*Table, error) {
	var shared []string
	for _, c := range t.schema.Columns {
		if o.schema.HasColumn(c.Name) {
			oc := o.schema.Columns[o.schema.ColumnIndex(c.Name)]
			if oc.Type != c.Type {
				return nil, fmt.Errorf("%w: join column %s is %s in %s but %s in %s",
					ErrTypeMismatch, c.Name, c.Type, t.schema.Name, oc.Type, o.schema.Name)
			}
			shared = append(shared, c.Name)
		}
	}
	if len(shared) == 0 {
		return nil, fmt.Errorf("%w: natural join of %s and %s shares no columns", ErrSchemaInvalid, t.schema.Name, o.schema.Name)
	}

	ns := Schema{Name: name}
	ns.Columns = append(ns.Columns, t.schema.Columns...)
	var extra []string
	for _, c := range o.schema.Columns {
		if !t.schema.HasColumn(c.Name) {
			ns.Columns = append(ns.Columns, c)
			extra = append(extra, c.Name)
		}
	}
	for _, k := range t.schema.Key {
		ns.Key = append(ns.Key, k)
	}
	for _, k := range o.schema.Key {
		if !contains(ns.Key, k) {
			ns.Key = append(ns.Key, k)
		}
	}
	out, err := NewTable(ns)
	if err != nil {
		return nil, err
	}

	// Hash o's rows by the shared-column tuple.
	oShared := make([]int, len(shared))
	for i, c := range shared {
		oShared[i] = o.schema.ColumnIndex(c)
	}
	buckets := make(map[string][]Row)
	for _, r := range o.rows {
		kt := make(Row, len(oShared))
		for i, j := range oShared {
			kt[i] = r[j]
		}
		ks := encodeKey(kt)
		buckets[ks] = append(buckets[ks], r)
	}

	tShared := make([]int, len(shared))
	for i, c := range shared {
		tShared[i] = t.schema.ColumnIndex(c)
	}
	oExtra := make([]int, len(extra))
	for i, c := range extra {
		oExtra[i] = o.schema.ColumnIndex(c)
	}
	for _, r := range t.rows {
		kt := make(Row, len(tShared))
		for i, j := range tShared {
			kt[i] = r[j]
		}
		for _, or := range buckets[encodeKey(kt)] {
			joined := make(Row, 0, len(ns.Columns))
			joined = append(joined, r...)
			for _, j := range oExtra {
				joined = append(joined, or[j])
			}
			if err := out.UpsertOwned(joined); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// OrderBy returns the rows sorted by the given columns (ascending). It does
// not modify the table.
func (t *Table) OrderBy(cols ...string) ([]Row, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := t.schema.ColumnIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: %s (order by)", ErrNoSuchColumn, c)
		}
		idx[i] = j
	}
	out := t.Rows()
	// Insertion sort keeps this dependency-free and stable; result sets in
	// this system are small per table.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessRows(out[j], out[j-1], idx); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

func lessRows(a, b Row, idx []int) bool {
	for _, i := range idx {
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return false
}
