package reldb

import (
	"fmt"
)

// Project returns a new table containing only cols, in the given order,
// named name and keyed by key (see Schema.Project for key inference).
// Duplicate projected rows collapse to one (set semantics); two source rows
// that agree on the new key but disagree elsewhere are an error, because
// such a projection is not a function of the key and cannot serve as a
// well-behaved view.
func (t *Table) Project(name string, cols []string, key []string) (*Table, error) {
	ps, err := t.schema.Project(name, cols, key)
	if err != nil {
		return nil, err
	}
	srcIdx := make([]int, len(cols))
	for i, c := range cols {
		srcIdx[i] = t.schema.ColumnIndex(c)
	}
	// Same-key projection (the common lens case, D13/D31): one output
	// row per source row under the same primary key, trivially
	// functional — rebuild on the source's tree shape instead of
	// re-keying and re-hashing every row.
	if sameKeyNames(ps.Key, t.schema.Key) {
		return t.RebuildAs(ps, func(r Row) (Row, error) {
			pr := make(Row, len(srcIdx))
			for i, si := range srcIdx {
				pr[i] = r[si]
			}
			return pr, nil
		})
	}
	bld, err := NewTableBuilder(ps)
	if err != nil {
		return nil, err
	}
	var keyBuf []byte
	var perr error
	t.rows.Ascend(func(_ string, e *rowEntry) bool {
		r := e.row
		pr := make(Row, len(cols))
		for i, si := range srcIdx {
			pr[i] = r[si]
		}
		keyBuf = bld.t.AppendKeyOf(keyBuf[:0], pr)
		if existing, ok := bld.Peek(keyBuf); ok {
			if !existing.Equal(pr) {
				perr = fmt.Errorf("%w: projection %s is not functional on key %v", ErrSchemaInvalid, name, bld.t.KeyValues(pr))
				return false
			}
			return true
		}
		if err := bld.Append(pr); err != nil {
			perr = err
			return false
		}
		return true
	})
	if perr != nil {
		return nil, perr
	}
	return bld.Table(), nil
}

// Select returns a new table named name containing the rows matching
// pred. Surviving rows keep their keys, so the result rides on the
// source's tree: kept runs are shared by pointer (cached digests
// included) and only the deletions' join paths allocate.
func (t *Table) Select(name string, pred Predicate) (*Table, error) {
	return t.RebuildAs(t.schema.Rename(name), func(r Row) (Row, error) {
		ok, err := pred.Eval(t.schema, r)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return r, nil
	})
}

// RenameColumns returns a copy of the table with columns renamed per the
// mapping old→new. Unmapped columns keep their names. Rows and keys are
// untouched, so the whole row tree is shared by pointer.
func (t *Table) RenameColumns(name string, mapping map[string]string) (*Table, error) {
	ns := t.schema.Rename(name)
	for old, nw := range mapping {
		i := ns.ColumnIndex(old)
		if i < 0 {
			return nil, fmt.Errorf("%w: %s (renaming in %s)", ErrNoSuchColumn, old, t.schema.Name)
		}
		ns.Columns[i].Name = nw
	}
	for i, k := range ns.Key {
		if nw, ok := mapping[k]; ok {
			ns.Key[i] = nw
		}
	}
	return t.RebuildAs(ns, func(r Row) (Row, error) { return r, nil })
}

// NaturalJoin joins t with o on their shared column names. The result
// contains t's columns followed by o's non-shared columns; its key is the
// union of both keys (deduplicated, t's order first). Matching is hash-based
// on the shared columns.
func (t *Table) NaturalJoin(name string, o *Table) (*Table, error) {
	var shared []string
	for _, c := range t.schema.Columns {
		if o.schema.HasColumn(c.Name) {
			oc := o.schema.Columns[o.schema.ColumnIndex(c.Name)]
			if oc.Type != c.Type {
				return nil, fmt.Errorf("%w: join column %s is %s in %s but %s in %s",
					ErrTypeMismatch, c.Name, c.Type, t.schema.Name, oc.Type, o.schema.Name)
			}
			shared = append(shared, c.Name)
		}
	}
	if len(shared) == 0 {
		return nil, fmt.Errorf("%w: natural join of %s and %s shares no columns", ErrSchemaInvalid, t.schema.Name, o.schema.Name)
	}

	ns := Schema{Name: name}
	ns.Columns = append(ns.Columns, t.schema.Columns...)
	var extra []string
	for _, c := range o.schema.Columns {
		if !t.schema.HasColumn(c.Name) {
			ns.Columns = append(ns.Columns, c)
			extra = append(extra, c.Name)
		}
	}
	for _, k := range t.schema.Key {
		ns.Key = append(ns.Key, k)
	}
	for _, k := range o.schema.Key {
		if !contains(ns.Key, k) {
			ns.Key = append(ns.Key, k)
		}
	}
	out, err := NewTable(ns)
	if err != nil {
		return nil, err
	}

	// Hash o's rows by the shared-column tuple.
	oShared := make([]int, len(shared))
	for i, c := range shared {
		oShared[i] = o.schema.ColumnIndex(c)
	}
	buckets := make(map[string][]Row)
	o.rows.Ascend(func(_ string, e *rowEntry) bool {
		kt := make(Row, len(oShared))
		for i, j := range oShared {
			kt[i] = e.row[j]
		}
		ks := encodeKey(kt)
		buckets[ks] = append(buckets[ks], e.row)
		return true
	})

	tShared := make([]int, len(shared))
	for i, c := range shared {
		tShared[i] = t.schema.ColumnIndex(c)
	}
	oExtra := make([]int, len(extra))
	for i, c := range extra {
		oExtra[i] = o.schema.ColumnIndex(c)
	}

	// Left-key-preserving join (the join-lens case: o's key columns are
	// all part of t's key, so the result is keyed exactly like t): each
	// left row maps to at most one output row under its own key, so the
	// result can ride on t's tree via RebuildAs — unmatched rows drop,
	// matched rows splice in o's extra columns, and the bucket's last
	// match wins, exactly as the upsert path below resolves duplicates.
	if sameKeyNames(ns.Key, t.schema.Key) {
		return t.RebuildAs(ns, func(r Row) (Row, error) {
			kt := make(Row, len(tShared))
			for i, j := range tShared {
				kt[i] = r[j]
			}
			matches := buckets[encodeKey(kt)]
			if len(matches) == 0 {
				return nil, nil
			}
			if len(oExtra) == 0 {
				return r, nil // semijoin: the row survives verbatim, subtree shared
			}
			or := matches[len(matches)-1]
			joined := make(Row, 0, len(ns.Columns))
			joined = append(joined, r...)
			for _, j := range oExtra {
				joined = append(joined, or[j])
			}
			return joined, nil
		})
	}

	var jerr error
	t.rows.Ascend(func(_ string, e *rowEntry) bool {
		r := e.row
		kt := make(Row, len(tShared))
		for i, j := range tShared {
			kt[i] = r[j]
		}
		for _, or := range buckets[encodeKey(kt)] {
			joined := make(Row, 0, len(ns.Columns))
			joined = append(joined, r...)
			for _, j := range oExtra {
				joined = append(joined, or[j])
			}
			if err := out.UpsertOwned(joined); err != nil {
				jerr = err
				return false
			}
		}
		return true
	})
	if jerr != nil {
		return nil, jerr
	}
	return out, nil
}

// OrderBy returns the rows sorted by the given columns (ascending). It does
// not modify the table.
func (t *Table) OrderBy(cols ...string) ([]Row, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := t.schema.ColumnIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: %s (order by)", ErrNoSuchColumn, c)
		}
		idx[i] = j
	}
	out := t.Rows()
	// Insertion sort keeps this dependency-free and stable; result sets in
	// this system are small per table.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessRows(out[j], out[j-1], idx); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

func lessRows(a, b Row, idx []int) bool {
	for _, i := range idx {
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return false
}
