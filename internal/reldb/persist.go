package reldb

import (
	"fmt"

	"medshare/internal/reldb/pmap"
)

// Content-addressed table persistence: the row tree is a Merkle DAG, so
// a table persists as (digest → node record) facts plus a root digest.
// ExportNodes emits only nodes whose digest the consumer does not hold
// yet — after a k-row delta that is the O(k log n) path-copied spine —
// and TableFromNodes rebuilds and *verifies*: keys and priorities are
// recomputed from row content and seed, digest caches start empty, and
// the recomputed Merkle root must equal the expected one. A rebuilt
// table that passes is bit-identical to the exported original (shape
// canonicity: the unique tree hashing to a root is the canonical
// treap); one that does not is rejected, never silently installed.

// NodeData is the persisted form of one row-tree node. The storage key
// is deliberately absent: it is a pure function of the row's key
// columns and is recomputed on import (a stored key would be the one
// field the leaf digest does not commit to).
type NodeData struct {
	Digest [32]byte
	Row    Row
	Left   [32]byte // all-zero = empty child
	Right  [32]byte
}

// ExportNodes walks the row tree bottom-up and calls emit for every
// node whose subtree digest skip does not already know (nil skip
// exports everything); whole already-known subtrees are pruned. emit
// returning false aborts; the return value reports completion.
func (t *Table) ExportNodes(skip func([32]byte) bool, emit func(NodeData) bool) bool {
	return pmap.ExportNodes(t.rows, rowEntryLeaf, skip, func(n pmap.ExportedNode[*rowEntry]) bool {
		return emit(NodeData{Digest: n.Digest, Row: n.Val.row, Left: n.Left, Right: n.Right})
	})
}

// TableFromNodes reconstructs a table from its persisted DAG: schema,
// priority secret, expected row-tree root, expected row count, and a
// fetch function resolving node digests. Every structural fact is
// rederived (keys from rows, priorities from the secret, sizes from
// children) and the rebuilt tree's recomputed Merkle root must equal
// root — so the result is either the exact original table or an error,
// never silently wrong data.
func TableFromNodes(schema Schema, secret []byte, root [32]byte, rows int, fetch func([32]byte) (NodeData, bool)) (*Table, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	seed := pmap.NewSeed(secret)
	var badRow error
	m, err := pmap.FromExported(seed, root, rows, func(d pmap.Hash) (pmap.ExportedNode[*rowEntry], bool) {
		nd, ok := fetch(d)
		if !ok {
			return pmap.ExportedNode[*rowEntry]{}, false
		}
		if err := t.schema.checkRow(nd.Row); err != nil {
			badRow = fmt.Errorf("reldb: persisted row for table %s invalid: %w", schema.Name, err)
			return pmap.ExportedNode[*rowEntry]{}, false
		}
		return pmap.ExportedNode[*rowEntry]{
			Digest: nd.Digest,
			Key:    t.keyOf(nd.Row),
			Val:    &rowEntry{row: nd.Row},
			Left:   nd.Left,
			Right:  nd.Right,
		}, true
	})
	if badRow != nil {
		return nil, badRow
	}
	if err != nil {
		return nil, err
	}
	if got := m.Len(); got != rows {
		return nil, fmt.Errorf("reldb: recovered table %s has %d rows, expected %d", schema.Name, got, rows)
	}
	if got := m.MerkleRoot(rowEntryLeaf); got != root {
		return nil, fmt.Errorf("reldb: recovered table %s root %x does not match expected %x", schema.Name, got[:8], root[:8])
	}
	t.rows = m
	return t, nil
}
