package reldb

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// randValue draws a value across all kinds, biased toward collisions so
// the equality cases get exercised.
func randValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null()
	case 1:
		bs := make([]byte, rng.Intn(6))
		for i := range bs {
			bs[i] = byte(rng.Intn(4)) // includes NULs and control bytes
		}
		return S(string(bs))
	case 2:
		return I(int64(rng.Intn(7)) - 3) // negatives included
	case 3:
		return F(float64(rng.Intn(9)-4) / 2)
	case 4:
		return B(rng.Intn(2) == 0)
	default:
		return T(time.Unix(int64(rng.Intn(5))-2, int64(rng.Intn(3))*1000).UTC())
	}
}

// TestOrderedEncodingAgreesWithCompare: bytewise comparison of
// AppendOrdered encodings must equal Value.Compare — the property that
// makes the persistent storage's intrinsic iteration order the canonical
// key order.
func TestOrderedEncodingAgreesWithCompare(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			a, b := randValue(rng), randValue(rng)
			want := a.Compare(b)
			got := bytes.Compare(a.AppendOrdered(nil), b.AppendOrdered(nil))
			if got != want {
				t.Logf("seed %d: enc order %d, Compare %d for %v vs %v", seed, got, want, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderedEncodingPrefixFree: no value's ordered encoding may be a
// proper prefix of another's — concatenated multi-column keys would
// otherwise compare wrongly and secondary-index prefix scans would leak
// across groups.
func TestOrderedEncodingPrefixFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]Value, 0, 400)
	for i := 0; i < 400; i++ {
		vals = append(vals, randValue(rng))
	}
	// Adversarial string pairs around the escape/terminator bytes.
	vals = append(vals, S(""), S("\x00"), S("\x00\x00"), S("\x00\x01"), S("\x00\xff"), S("a"), S("a\x00"), S("a\x00b"))
	for _, a := range vals {
		ea := a.AppendOrdered(nil)
		for _, b := range vals {
			if a.Equal(b) {
				continue
			}
			eb := b.AppendOrdered(nil)
			if len(ea) < len(eb) && bytes.Equal(ea, eb[:len(ea)]) {
				t.Fatalf("encoding of %v is a proper prefix of %v's", a, b)
			}
		}
	}
}

// TestOrderedEncodingStringEdgeCases pins the escape scheme: embedded
// NULs and prefix relationships must order exactly like the raw strings.
func TestOrderedEncodingStringEdgeCases(t *testing.T) {
	ss := []string{"", "\x00", "\x00\x00", "\x00a", "a", "a\x00", "a\x00b", "aa", "ab", "b"}
	sorted := append([]string(nil), ss...)
	sort.Strings(sorted)
	encs := make([][]byte, len(sorted))
	for i, s := range sorted {
		encs[i] = S(s).AppendOrdered(nil)
	}
	for i := 0; i+1 < len(encs); i++ {
		if bytes.Compare(encs[i], encs[i+1]) >= 0 {
			t.Fatalf("enc(%q) >= enc(%q)", sorted[i], sorted[i+1])
		}
	}
}

// TestOrderedEncodingFloatEdges pins float ordering across the sign.
func TestOrderedEncodingFloatEdges(t *testing.T) {
	fs := []float64{math.Inf(-1), -2.5, -0.0, 0.0, 0.25, 7, math.Inf(1)}
	for i := 0; i+1 < len(fs); i++ {
		a, b := F(fs[i]).AppendOrdered(nil), F(fs[i+1]).AppendOrdered(nil)
		if bytes.Compare(a, b) > 0 {
			t.Fatalf("enc(%v) > enc(%v)", fs[i], fs[i+1])
		}
	}
}

// TestRowsCanonicalMatchesExplicitSort: after a random mutation history,
// the intrinsic storage order must equal an explicit sort of the rows by
// key comparison — equivalent op sequences converge to identical
// canonical order and identical hashes regardless of history.
func TestRowsCanonicalMatchesExplicitSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := MustNewTable(patientSchema())
		for op := 0; op < 150; op++ {
			id := int64(rng.Intn(40))
			switch rng.Intn(4) {
			case 0, 1:
				_ = tbl.Upsert(Row{I(id), S(fmt.Sprintf("p%d", id)), Null(), I(int64(rng.Intn(90)))})
			case 2:
				_ = tbl.Delete(Row{I(id)})
			case 3:
				_ = tbl.Hash()
			}
		}
		rows := tbl.RowsCanonical()
		sorted := append([]Row(nil), rows...)
		sort.Slice(sorted, func(a, b int) bool {
			return sorted[a][0].Compare(sorted[b][0]) < 0
		})
		for i := range rows {
			if !rows[i].Equal(sorted[i]) {
				t.Logf("seed %d: canonical order diverges from Compare sort at %d", seed, i)
				return false
			}
		}
		// A replay of the final contents in random order must agree on
		// canonical order and hash.
		replay := MustNewTable(patientSchema())
		perm := rng.Perm(len(rows))
		for _, i := range perm {
			replay.MustInsert(rows[i])
		}
		if replay.Hash() != tbl.Hash() || !replay.Equal(tbl) {
			t.Logf("seed %d: replayed table disagrees", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTableDeltaSharesRows: after cloning a large table and editing k
// rows, the clone must share the untouched rows with the original by
// reference (structural sharing), and the original must be unchanged.
func TestTableDeltaSharesRows(t *testing.T) {
	base := bigPatients(t, 1000)
	derived := base.Clone()
	if err := derived.Update(Row{I(500)}, map[string]Value{"age": I(1)}); err != nil {
		t.Fatal(err)
	}
	if err := derived.Delete(Row{I(7)}); err != nil {
		t.Fatal(err)
	}
	baseRows, derivedRows := base.Rows(), derived.Rows()
	if len(baseRows) != 1000 || len(derivedRows) != 999 {
		t.Fatalf("lens: %d, %d", len(baseRows), len(derivedRows))
	}
	derivedPtrs := make(map[*Value]bool, len(derivedRows))
	for _, dr := range derivedRows {
		derivedPtrs[&dr[0]] = true
	}
	shared := 0
	for _, br := range baseRows {
		if derivedPtrs[&br[0]] {
			shared++
		}
	}
	if shared < 997 {
		t.Fatalf("only %d rows shared by reference after a 2-row delta", shared)
	}
}

// TestDiffOfDerivedIsMinimalAndOrdered: the structural diff must emit
// exactly the edits, in canonical key order.
func TestDiffOfDerivedIsMinimalAndOrdered(t *testing.T) {
	base := bigPatients(t, 500)
	derived := base.Clone()
	if err := derived.Update(Row{I(42)}, map[string]Value{"age": I(99)}); err != nil {
		t.Fatal(err)
	}
	if err := derived.Delete(Row{I(100)}); err != nil {
		t.Fatal(err)
	}
	derived.MustInsert(Row{I(9000), S("new"), Null(), I(1)})
	cs, err := base.Diff(derived)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Updated) != 1 || len(cs.Deleted) != 1 || len(cs.Inserted) != 1 {
		t.Fatalf("non-minimal diff: %d/%d/%d", len(cs.Updated), len(cs.Deleted), len(cs.Inserted))
	}
	if v, _ := cs.Updated[0].After[3].Int(); v != 99 {
		t.Fatal("wrong update emitted")
	}
	if err := base.ValidateDiff(derived, cs); err != nil {
		t.Fatal(err)
	}
	applied := base.Clone()
	if err := applied.Apply(cs); err != nil {
		t.Fatal(err)
	}
	if applied.Hash() != derived.Hash() {
		t.Fatal("apply(diff) does not reproduce the target")
	}
}
