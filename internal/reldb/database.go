package reldb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Database is a named collection of tables with a lock-free read path.
// Each peer in the sharing architecture owns one Database holding its full
// records (sources) and its materialized shared views.
//
// Concurrency model: every table name maps to a slot holding an atomic
// pointer to an immutable *Table snapshot. A table stored in a slot is
// never mutated in place — all mutation goes through the commit path
// (WithTable / PutTable), which clones the current snapshot (O(1) under
// copy-on-write), applies the change to the private clone, and atomically
// publishes it. Readers (Table, Snapshot, the peers' fetch handlers)
// therefore see consistent snapshots with a single atomic load and never
// contend with writers or with readers of other tables; writers to
// different tables never contend with each other. The name→slot map itself
// is copy-on-write too: Create/Drop/first-Put replace the whole map under
// a short mutex, so lookups are one atomic load plus a map read.
type Database struct {
	name string
	// tables points to the current immutable name→slot map. Replaced
	// wholesale by structural changes (create/drop/first put of a name);
	// never mutated in place.
	tables atomic.Pointer[map[string]*tableSlot]
	// mapMu serializes map replacement. Slot commits do not take it.
	mapMu sync.Mutex
}

// tableSlot is one table's commit point: a mutex serializing writers and
// an atomic pointer readers load without locking.
type tableSlot struct {
	mu  sync.Mutex
	cur atomic.Pointer[Table]
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	d := &Database{name: name}
	m := make(map[string]*tableSlot)
	d.tables.Store(&m)
	return d
}

// Name returns the database name.
func (d *Database) Name() string { return d.name }

// slot returns the commit slot for name, or nil.
func (d *Database) slot(name string) *tableSlot {
	return (*d.tables.Load())[name]
}

// slotOrCreate returns the slot for name, installing a fresh one (via a
// copy-on-write map swap) if the name is new.
func (d *Database) slotOrCreate(name string) *tableSlot {
	if s := d.slot(name); s != nil {
		return s
	}
	d.mapMu.Lock()
	defer d.mapMu.Unlock()
	old := *d.tables.Load()
	if s, ok := old[name]; ok {
		return s
	}
	next := make(map[string]*tableSlot, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	s := &tableSlot{}
	next[name] = s
	d.tables.Store(&next)
	return s
}

// CreateTable creates an empty table from the schema and returns an
// independent snapshot of it. It fails if a table with the same name
// already exists. Mutate the new table through WithTable (or build it
// first and install it with PutTable).
func (d *Database) CreateTable(schema Schema) (*Table, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	s := d.slotOrCreate(schema.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur.Load() != nil {
		return nil, fmt.Errorf("reldb: table %s already exists in %s", schema.Name, d.name)
	}
	s.cur.Store(t)
	return t.Clone(), nil
}

// PutTable installs (or replaces) a table under its schema name. The
// stored snapshot is independent of t: the caller may keep mutating its
// instance without affecting the database (and vice versa).
func (d *Database) PutTable(t *Table) {
	s := d.slotOrCreate(t.Name())
	snap := t.Clone()
	s.mu.Lock()
	s.cur.Store(snap)
	s.mu.Unlock()
}

// Table returns an independent snapshot of the named table, or an error
// if it does not exist. The snapshot is O(1) (copy-on-write) and safe to
// read or mutate without further locking; changes are not reflected in
// the database until committed back via PutTable or made through
// WithTable.
func (d *Database) Table(name string) (*Table, error) {
	if s := d.slot(name); s != nil {
		if t := s.cur.Load(); t != nil {
			return t.Clone(), nil
		}
	}
	return nil, fmt.Errorf("%w: %s in database %s", ErrNoSuchTable, name, d.name)
}

// view returns the current immutable snapshot without cloning. Internal
// read-only fast path; callers must not mutate the result.
func (d *Database) view(name string) (*Table, bool) {
	if s := d.slot(name); s != nil {
		if t := s.cur.Load(); t != nil {
			return t, true
		}
	}
	return nil, false
}

// Has reports whether the named table exists.
func (d *Database) Has(name string) bool {
	_, ok := d.view(name)
	return ok
}

// Drop removes the named table.
func (d *Database) Drop(name string) error {
	d.mapMu.Lock()
	defer d.mapMu.Unlock()
	old := *d.tables.Load()
	s, ok := old[name]
	if !ok || s.cur.Load() == nil {
		return fmt.Errorf("%w: %s in database %s", ErrNoSuchTable, name, d.name)
	}
	next := make(map[string]*tableSlot, len(old))
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	d.tables.Store(&next)
	return nil
}

// TableNames returns the sorted names of all tables.
func (d *Database) TableNames() []string {
	m := *d.tables.Load()
	out := make([]string, 0, len(m))
	for n, s := range m {
		if s.cur.Load() != nil {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// WithTable atomically commits a mutation to the named table: fn runs on
// a private clone of the current snapshot while holding the table's
// commit lock, and the clone is published only if fn succeeds — an error
// aborts the commit and leaves the table unchanged. Readers are never
// blocked; they keep seeing the previous snapshot until the commit lands.
// Writers to other tables proceed in parallel.
func (d *Database) WithTable(name string, fn func(*Table) error) error {
	s := d.slot(name)
	if s == nil {
		return fmt.Errorf("%w: %s in database %s", ErrNoSuchTable, name, d.name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	if cur == nil {
		return fmt.Errorf("%w: %s in database %s", ErrNoSuchTable, name, d.name)
	}
	work := cur.Clone()
	if err := fn(work); err != nil {
		return err
	}
	s.cur.Store(work)
	return nil
}

// ReplaceTable atomically replaces the named table: fn receives the
// current immutable snapshot (it must not mutate it) and returns the
// replacement, which is published under the table's commit lock. It is
// the read-modify-write primitive for callers that derive a whole new
// table from the current one (a lens put embedding an incoming view) —
// two such replacements of one table serialize instead of overwriting
// each other, which a snapshot-then-PutTable sequence would.
func (d *Database) ReplaceTable(name string, fn func(*Table) (*Table, error)) error {
	s := d.slot(name)
	if s == nil {
		return fmt.Errorf("%w: %s in database %s", ErrNoSuchTable, name, d.name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	if cur == nil {
		return fmt.Errorf("%w: %s in database %s", ErrNoSuchTable, name, d.name)
	}
	next, err := fn(cur)
	if err != nil {
		return err
	}
	s.cur.Store(next.Clone())
	return nil
}

// Snapshot returns a consistent point-in-time copy of the database in
// O(#tables): each table's current immutable snapshot is shared by
// pointer (copy-on-write), no row data is copied.
func (d *Database) Snapshot() *Database {
	out := NewDatabase(d.name)
	old := *d.tables.Load()
	next := make(map[string]*tableSlot, len(old))
	for n, s := range old {
		t := s.cur.Load()
		if t == nil {
			continue
		}
		ns := &tableSlot{}
		// The stored snapshot is immutable; sharing the pointer is safe
		// because both databases clone before any mutation.
		ns.cur.Store(t)
		next[n] = ns
	}
	out.tables.Store(&next)
	return out
}
