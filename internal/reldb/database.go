package reldb

import (
	"fmt"
	"sort"
	"sync"
)

// Database is a named collection of tables with coarse-grained locking.
// Each peer in the sharing architecture owns one Database holding its full
// records (sources) and its materialized shared views.
type Database struct {
	mu     sync.RWMutex
	name   string
	tables map[string]*Table
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{name: name, tables: make(map[string]*Table)}
}

// Name returns the database name.
func (d *Database) Name() string { return d.name }

// CreateTable creates an empty table from the schema. It fails if a table
// with the same name already exists.
func (d *Database) CreateTable(schema Schema) (*Table, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[schema.Name]; dup {
		return nil, fmt.Errorf("reldb: table %s already exists in %s", schema.Name, d.name)
	}
	d.tables[schema.Name] = t
	return t, nil
}

// PutTable installs (or replaces) a table under its schema name.
func (d *Database) PutTable(t *Table) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tables[t.Name()] = t
}

// Table returns the named table, or an error if it does not exist. The
// returned table is the live instance; use WithTable for guarded access in
// concurrent contexts.
func (d *Database) Table(name string) (*Table, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s in database %s", ErrNoSuchTable, name, d.name)
	}
	return t, nil
}

// Has reports whether the named table exists.
func (d *Database) Has(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.tables[name]
	return ok
}

// Drop removes the named table.
func (d *Database) Drop(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[name]; !ok {
		return fmt.Errorf("%w: %s in database %s", ErrNoSuchTable, name, d.name)
	}
	delete(d.tables, name)
	return nil
}

// TableNames returns the sorted names of all tables.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WithTable runs fn while holding the database write lock, giving fn
// exclusive access to the named table.
func (d *Database) WithTable(name string, fn func(*Table) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tables[name]
	if !ok {
		return fmt.Errorf("%w: %s in database %s", ErrNoSuchTable, name, d.name)
	}
	return fn(t)
}

// Snapshot returns a deep copy of the database.
func (d *Database) Snapshot() *Database {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := NewDatabase(d.name)
	for n, t := range d.tables {
		out.tables[n] = t.Clone()
	}
	return out
}
