package reldb

import (
	"fmt"
	"testing"
)

func reseedTestTable(n int) *Table {
	t := MustNewTable(Schema{
		Name: "T",
		Columns: []Column{
			{Name: "k", Type: KindInt},
			{Name: "v", Type: KindString},
		},
		Key: []string{"k"},
	})
	for i := 0; i < n; i++ {
		t.MustInsert(Row{I(int64(i)), S(fmt.Sprintf("v%d", i))})
	}
	return t
}

// TestReseededShapeAndContent: reseeding preserves contents, changes the
// Merkle root (shape is seed-specific), converges across independently
// built replicas under the same secret, and is O(1) when the table
// already carries the secret.
func TestReseededShapeAndContent(t *testing.T) {
	a := reseedTestTable(256)
	secret := []byte("share-secret-1")

	sa := a.Reseeded(secret)
	if !sa.Equal(a) {
		t.Fatal("reseeding changed contents")
	}
	if sa.RowsRoot() == a.RowsRoot() {
		t.Fatal("seeded root equals unkeyed root: seed did not change the shape")
	}
	if got := sa.PrioritySecret(); string(got) != string(secret) {
		t.Fatalf("PrioritySecret = %q", got)
	}
	if a.PrioritySecret() != nil {
		t.Fatal("original table grew a secret")
	}

	// Fast path: same secret returns the receiver.
	if sa.Reseeded(secret) != sa {
		t.Fatal("reseeding with the carried secret must be the identity")
	}

	// An independently built replica under the same secret converges to
	// the identical root; a different secret diverges.
	b := reseedTestTable(256)
	if sb := b.Reseeded(secret); sb.RowsRoot() != sa.RowsRoot() {
		t.Fatal("replicas with the same secret disagree on the root")
	}
	if so := b.Reseeded([]byte("other")); so.RowsRoot() == sa.RowsRoot() {
		t.Fatal("different secrets converged to one shape")
	}

	// Back to unkeyed: the original root.
	if un := sa.Reseeded(nil); un.RowsRoot() != a.RowsRoot() {
		t.Fatal("unseeding did not restore the unkeyed shape")
	}

	// Mutations on a seeded table stay in the seeded shape: a replica
	// applying the same edit converges.
	ca, cb := sa.Clone(), b.Reseeded(secret).Clone()
	for _, c := range []*Table{ca, cb} {
		if err := c.Update(Row{I(7)}, map[string]Value{"v": S("edited")}); err != nil {
			t.Fatal(err)
		}
	}
	if ca.RowsRoot() != cb.RowsRoot() {
		t.Fatal("seeded replicas diverged after identical edits")
	}
}

// TestRebuildAsSharing: an identity rebuild shares the whole row tree —
// cached digests included — and a k-changed rebuild equals the
// mutation-built reference while sharing everything untouched.
func TestRebuildAsSharing(t *testing.T) {
	src := reseedTestTable(512)
	src.Hash() // build the digest cache

	ident, err := src.RebuildAs(src.Schema(), func(r Row) (Row, error) { return r, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !ident.Equal(src) {
		t.Fatal("identity rebuild changed contents")
	}
	// Shared root node ⇒ the cached root is available without hashing.
	if _, ok := ident.CachedHash(); !ok {
		t.Fatal("identity rebuild did not share the source's digest cache")
	}
	if ident.RowsRoot() != src.RowsRoot() {
		t.Fatal("identity rebuild changed the root")
	}

	// Change one row, delete one row; reference built by plain mutation.
	out, err := src.RebuildAs(src.Schema(), func(r Row) (Row, error) {
		k, _ := r[0].Int()
		switch k {
		case 100:
			nr := r.Clone()
			nr[1] = S("changed")
			return nr, nil
		case 200:
			return nil, nil
		default:
			return r, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := src.Clone()
	if err := ref.Update(Row{I(100)}, map[string]Value{"v": S("changed")}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Delete(Row{I(200)}); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(ref) {
		t.Fatal("rebuild diverges from mutation-built reference")
	}
	if out.RowsRoot() != ref.RowsRoot() {
		t.Fatal("rebuild root diverges from mutation-built reference (shape not canonical)")
	}

	// A rebuild onto a different schema (projection) keeps the keys.
	ps, err := src.Schema().Project("P", []string{"k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := src.RebuildAs(ps, func(r Row) (Row, error) {
		return Row{r[0]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := src.Project("P", []string{"k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !proj.Equal(want) {
		t.Fatal("projection rebuild diverges from Table.Project")
	}

	// Errors abort the walk.
	if _, err := src.RebuildAs(src.Schema(), func(Row) (Row, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("transform error not propagated")
	}
}
