package reldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"medshare/internal/merkle"
	"medshare/internal/reldb/pmap"
)

func merkleTestSchema() Schema {
	return Schema{
		Name: "mrk",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "name", Type: KindString},
			{Name: "dose", Type: KindString},
		},
		Key: []string{"id"},
	}
}

// randomMerkleTable builds a table through a random mutation history and
// returns it plus the reference contents.
func randomMerkleTable(rng *rand.Rand, n int) (*Table, map[int64]string) {
	t := MustNewTable(merkleTestSchema())
	ref := make(map[int64]string)
	for i := 0; i < n; i++ {
		id := int64(rng.Intn(n/2 + 1))
		switch rng.Intn(5) {
		case 0:
			if _, ok := ref[id]; ok {
				_ = t.Delete(Row{I(id)})
				delete(ref, id)
			}
		default:
			dose := fmt.Sprintf("d%d", rng.Intn(8))
			_ = t.Upsert(Row{I(id), S(fmt.Sprintf("n%d", id)), S(dose)})
			ref[id] = dose
		}
	}
	return t, ref
}

// TestMerkleRootIffEqual: the central property of the canonical Merkle
// row tree — RowsRoot (and Hash) equality holds exactly when the tables
// are Equal, regardless of mutation history.
func TestMerkleRootIffEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, ra := randomMerkleTable(rng, 120)
		b, rb := randomMerkleTable(rng, 120)

		// Rebuild a's contents through an entirely different history
		// (ascending bulk inserts into a fresh table).
		c := MustNewTable(merkleTestSchema())
		for _, r := range a.Rows() {
			c.MustInsert(r)
		}
		if !a.Equal(c) || a.RowsRoot() != c.RowsRoot() || a.Hash() != c.Hash() {
			t.Logf("seed %d: rebuilt table root/hash diverged from original", seed)
			return false
		}

		sameRef := len(ra) == len(rb)
		if sameRef {
			for id, dose := range ra {
				if rb[id] != dose {
					sameRef = false
					break
				}
			}
		}
		eq := a.Equal(b)
		rootEq := a.RowsRoot() == b.RowsRoot()
		hashEq := a.Hash() == b.Hash()
		if eq != sameRef || rootEq != sameRef || hashEq != sameRef {
			t.Logf("seed %d: Equal=%v rootEq=%v hashEq=%v want %v", seed, eq, rootEq, hashEq, sameRef)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMerkleRootAfterChangesetApply: applying a.Diff(b) to a clone of a
// must land exactly on b's root — the convergence check peers run.
func TestMerkleRootAfterChangesetApply(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a, _ := randomMerkleTable(rng, 200)
	b, _ := randomMerkleTable(rng, 200)
	a.Hash() // replicas are hashed in steady state; clones share the cache
	cs, err := a.Diff(b.Renamed(a.Name()))
	if err != nil {
		t.Fatal(err)
	}
	applied := a.Clone()
	if err := applied.Apply(cs); err != nil {
		t.Fatal(err)
	}
	if applied.RowsRoot() != b.RowsRoot() {
		t.Fatal("root after changeset apply diverges from target")
	}
}

// TestProveRowRoundTrip: proofs for every row verify against RowsRoot;
// tampered rows, foreign roots, and proofs reused for other rows fail.
func TestProveRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl, _ := randomMerkleTable(rng, 300)
	if tbl.Len() < 10 {
		t.Fatal("table too small for the test")
	}
	root := tbl.RowsRoot()
	rows := tbl.Rows()
	for _, r := range rows {
		row, p, err := tbl.ProveRow(tbl.KeyValues(r))
		if err != nil {
			t.Fatal(err)
		}
		if !row.Equal(r) {
			t.Fatal("ProveRow returned the wrong row")
		}
		if !VerifyRowProof(root, row, p) {
			t.Fatalf("valid proof rejected for key %v", tbl.KeyValues(r))
		}
		// Tampered row content must be rejected.
		bad := row.Clone()
		bad[2] = S("tampered")
		if VerifyRowProof(root, bad, p) {
			t.Fatal("tampered row accepted")
		}
		// The proof must not verify an unrelated row.
		other := rows[rng.Intn(len(rows))]
		if !other.Equal(row) && VerifyRowProof(root, other, p) {
			t.Fatal("proof accepted for a different row")
		}
	}
	// A proof never transfers to another table's root.
	other, _ := randomMerkleTable(rand.New(rand.NewSource(6)), 300)
	row, p, err := tbl.ProveRow(tbl.KeyValues(rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	if other.RowsRoot() != root && VerifyRowProof(other.RowsRoot(), row, p) {
		t.Fatal("proof accepted against a foreign root")
	}
	if _, _, err := tbl.ProveRow(Row{I(1 << 40)}); err == nil {
		t.Fatal("proof produced for an absent key")
	}
}

// TestSplicedInteriorNodeRejected: domain separation between leaf and
// interior hashes must stop an interior digest from being re-presented
// at a different tree position. We splice by treating a child subtree's
// digest as if it were an entry digest one level up — without the
// leaf/tree prefixes these would collide by construction.
func TestSplicedInteriorNodeRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl, _ := randomMerkleTable(rng, 300)
	root := tbl.RowsRoot()
	node, ok := tbl.MerkleNodeAt(nil)
	if !ok || node.Left == nil {
		t.Fatal("need a root with a left child")
	}
	// Claim the left subtree's digest is a leaf sitting directly under
	// the root: a proof with no steps whose node is the root itself.
	spliced := pmap.Proof{Left: node.Left.Digest}
	if node.Right != nil {
		spliced.Right = node.Right.Digest
	}
	// The "entry" the attacker presents is the left child's interior
	// digest re-labelled as a leaf; the root-entry digest goes where the
	// left child's belongs. Every such rearrangement must fail.
	var buf []byte
	rootLeaf := merkle.HashLeaf(node.Row.AppendCanonical(buf))
	for _, attempt := range []pmap.Proof{
		spliced,
		{Left: rootLeaf, Right: spliced.Right},
		{Left: spliced.Right, Right: node.Left.Digest},
	} {
		if pmap.VerifyProof(root, node.Left.Digest, attempt) {
			t.Fatal("interior digest accepted as a leaf entry")
		}
	}
}

// TestRowDigestIsDomainSeparatedLeaf: rowEntry digests must be
// merkle.HashLeaf over the canonical row encoding — one shared leaf
// construction for table rows and block trees.
func TestRowDigestIsDomainSeparatedLeaf(t *testing.T) {
	r := Row{I(7), S("amoxicillin"), S("250mg")}
	want := merkle.HashLeaf(r.AppendCanonical(nil))
	if rowDigest(r) != want {
		t.Fatal("rowDigest is not merkle.HashLeaf over the canonical encoding")
	}
}

// TestMerkleAssemblerRebuild: grafting every subtree of a table through
// the assembler reproduces the table exactly (root-for-root), and
// out-of-order streams are rejected.
func TestMerkleAssemblerRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl, _ := randomMerkleTable(rng, 250)
	root := tbl.RowsRoot()

	// Whole-table graft: one AppendLocal of the root digest.
	a := NewMerkleAssembler(tbl)
	if !a.HasLocal(root) {
		t.Fatal("assembler does not know its own root")
	}
	if err := a.AppendLocal(root); err != nil {
		t.Fatal(err)
	}
	out, err := a.Table()
	if err != nil {
		t.Fatal(err)
	}
	if out.RowsRoot() != root || !out.Equal(tbl) {
		t.Fatal("grafted rebuild diverged")
	}

	// Row-by-row transfer into an empty base.
	empty := MustNewTable(merkleTestSchema())
	b := NewMerkleAssembler(empty)
	for _, r := range tbl.Rows() {
		if err := b.AppendRow(r.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	out2, err := b.Table()
	if err != nil {
		t.Fatal(err)
	}
	if out2.RowsRoot() != root {
		t.Fatal("row-by-row rebuild diverged")
	}

	// Out-of-order and duplicate appends must be rejected.
	c := NewMerkleAssembler(empty)
	rows := tbl.Rows()
	if err := c.AppendRow(rows[1].Clone()); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRow(rows[0].Clone()); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	d := NewMerkleAssembler(empty)
	if err := d.AppendRow(rows[0].Clone()); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendRow(rows[0].Clone()); err == nil {
		t.Fatal("duplicate append accepted")
	}
}
