package reldb

import (
	"errors"
	"testing"
)

func patientSchema() Schema {
	return Schema{
		Name: "patients",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "name", Type: KindString},
			{Name: "city", Type: KindString, Nullable: true},
			{Name: "age", Type: KindInt},
		},
		Key: []string{"id"},
	}
}

func TestSchemaValidateOK(t *testing.T) {
	if err := patientSchema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Schema)
	}{
		{"empty name", func(s *Schema) { s.Name = "" }},
		{"no columns", func(s *Schema) { s.Columns = nil }},
		{"unnamed column", func(s *Schema) { s.Columns[0].Name = "" }},
		{"duplicate column", func(s *Schema) { s.Columns[1].Name = "id" }},
		{"no key", func(s *Schema) { s.Key = nil }},
		{"missing key column", func(s *Schema) { s.Key = []string{"ghost"} }},
		{"duplicate key column", func(s *Schema) { s.Key = []string{"id", "id"} }},
		{"nullable key", func(s *Schema) { s.Key = []string{"city"} }},
	}
	for _, c := range cases {
		s := patientSchema()
		c.mutate(&s)
		if err := s.Validate(); !errors.Is(err, ErrSchemaInvalid) {
			t.Errorf("%s: want ErrSchemaInvalid, got %v", c.name, err)
		}
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := patientSchema()
	if i := s.ColumnIndex("city"); i != 2 {
		t.Fatalf("city index = %d", i)
	}
	if i := s.ColumnIndex("ghost"); i != -1 {
		t.Fatalf("ghost index = %d", i)
	}
	if !s.HasColumn("age") || s.HasColumn("ghost") {
		t.Fatal("HasColumn wrong")
	}
}

func TestSchemaKeyHelpers(t *testing.T) {
	s := patientSchema()
	if got := s.KeyIndexes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("KeyIndexes = %v", got)
	}
	if !s.IsKeyColumn("id") || s.IsKeyColumn("name") {
		t.Fatal("IsKeyColumn wrong")
	}
}

func TestSchemaEqualIgnoresName(t *testing.T) {
	a := patientSchema()
	b := patientSchema()
	b.Name = "renamed"
	if !a.Equal(b) {
		t.Fatal("schemas differing only in name should be equal")
	}
	b.Columns[3].Type = KindFloat
	if a.Equal(b) {
		t.Fatal("different column types should not be equal")
	}
}

func TestSchemaCloneIndependent(t *testing.T) {
	a := patientSchema()
	b := a.Clone()
	b.Columns[0].Name = "pk"
	b.Key[0] = "pk"
	if a.Columns[0].Name != "id" || a.Key[0] != "id" {
		t.Fatal("clone aliases original")
	}
}

func TestSchemaProjectInheritsKey(t *testing.T) {
	s := patientSchema()
	p, err := s.Project("v", []string{"id", "name"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Key) != 1 || p.Key[0] != "id" {
		t.Fatalf("key = %v", p.Key)
	}
	if len(p.Columns) != 2 {
		t.Fatalf("columns = %v", p.Columns)
	}
}

func TestSchemaProjectNewKey(t *testing.T) {
	s := patientSchema()
	p, err := s.Project("v", []string{"name", "age"}, []string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Key[0] != "name" {
		t.Fatalf("key = %v", p.Key)
	}
}

func TestSchemaProjectDropsKeyWithoutNewKey(t *testing.T) {
	s := patientSchema()
	if _, err := s.Project("v", []string{"name", "age"}, nil); !errors.Is(err, ErrSchemaInvalid) {
		t.Fatalf("want ErrSchemaInvalid, got %v", err)
	}
}

func TestSchemaProjectUnknownColumn(t *testing.T) {
	s := patientSchema()
	if _, err := s.Project("v", []string{"ghost"}, []string{"ghost"}); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
}

func TestSchemaProjectClearsNullableOnNewKey(t *testing.T) {
	s := patientSchema()
	p, err := s.Project("v", []string{"city", "id"}, []string{"city"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Columns[p.ColumnIndex("city")].Nullable {
		t.Fatal("key column must not stay nullable")
	}
}

func TestCheckRow(t *testing.T) {
	s := patientSchema()
	good := Row{I(1), S("alice"), Null(), I(30)}
	if err := s.checkRow(good); err != nil {
		t.Fatal(err)
	}
	bad := []Row{
		{I(1), S("alice"), Null()},                // arity
		{S("1"), S("alice"), Null(), I(30)},       // type
		{I(1), Null(), Null(), I(30)},             // null in non-nullable
		{I(1), S("alice"), S("osaka"), F(30)},     // float for int
		{I(1), S("alice"), I(99), I(30)},          // wrong kind in nullable col
		{I(1), S("a"), Null(), I(30), S("extra")}, // too many
	}
	for i, r := range bad {
		if err := s.checkRow(r); !errors.Is(err, ErrTypeMismatch) {
			t.Errorf("row %d: want ErrTypeMismatch, got %v", i, err)
		}
	}
}
