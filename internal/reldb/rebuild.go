package reldb

import (
	"medshare/internal/reldb/pmap"
)

// sameKeyNames reports whether two key-column name lists are identical
// in order.
func sameKeyNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameRowRef reports whether two rows are the same slice (the marker a
// RebuildAs transform uses for "unchanged").
func sameRowRef(a, b Row) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// RebuildAs derives a table with schema ns from t's rows in one
// canonical in-order pass: f maps each stored row to its replacement —
// nil deletes the row, returning the argument itself marks it
// unchanged. This is the fast path for every same-keyed rebuild (lens
// puts, same-key projections, selections, renames): the output reuses
// t's storage keys, tree shape, and priorities wholesale, and subtrees
// of unchanged rows are shared by pointer together with their cached
// digests — so a rebuild that changes k of n rows costs the O(n) walk
// but allocates only O(k) nodes, with no per-row key encoding and no
// priority hashing.
//
// CONTRACT: every replacement row must carry the same primary-key
// values (under ns's key) that the original row carries under t's key,
// so the storage-key encodings coincide. Same-keyed lens puts and
// projections satisfy this by construction; a violation would corrupt
// the output's key order, which the lens-law suites pin against.
//
// Rows handed to f are shared references (read-only); replacement rows
// are owned by the result.
func (t *Table) RebuildAs(ns Schema, f func(Row) (Row, error)) (*Table, error) {
	out, err := NewTable(ns)
	if err != nil {
		return nil, err
	}
	rows, err := pmap.Rebuild(t.rows, func(_ string, e *rowEntry) (*rowEntry, bool, bool, error) {
		nr, err := f(e.row)
		if err != nil {
			return nil, false, false, err
		}
		if nr == nil {
			return nil, false, false, nil
		}
		if sameRowRef(nr, e.row) {
			return e, true, false, nil
		}
		return &rowEntry{row: nr}, true, true, nil
	})
	if err != nil {
		return nil, err
	}
	out.rows = rows
	return out, nil
}
