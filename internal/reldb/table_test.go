package reldb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newPatients(t *testing.T, rows ...Row) *Table {
	t.Helper()
	tbl, err := NewTable(patientSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func alice() Row { return Row{I(1), S("alice"), S("Osaka"), I(30)} }
func bob() Row   { return Row{I(2), S("bob"), Null(), I(41)} }

func TestInsertGet(t *testing.T) {
	tbl := newPatients(t, alice(), bob())
	if tbl.Len() != 2 {
		t.Fatalf("len = %d", tbl.Len())
	}
	got, ok := tbl.Get(Row{I(1)})
	if !ok || !got.Equal(alice()) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := tbl.Get(Row{I(99)}); ok {
		t.Fatal("missing key found")
	}
	if !tbl.Has(Row{I(2)}) || tbl.Has(Row{I(3)}) {
		t.Fatal("Has wrong")
	}
}

func TestInsertDuplicateKey(t *testing.T) {
	tbl := newPatients(t, alice())
	err := tbl.Insert(Row{I(1), S("impostor"), Null(), I(9)})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
}

func TestInsertTypeChecked(t *testing.T) {
	tbl := newPatients(t)
	if err := tbl.Insert(Row{S("1"), S("x"), Null(), I(1)}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

func TestInsertClonesRow(t *testing.T) {
	tbl := newPatients(t)
	r := alice()
	if err := tbl.Insert(r); err != nil {
		t.Fatal(err)
	}
	r[1] = S("mutated")
	got, _ := tbl.Get(Row{I(1)})
	if s, _ := got[1].Str(); s != "alice" {
		t.Fatal("table aliases caller's row")
	}
}

func TestUpdate(t *testing.T) {
	tbl := newPatients(t, alice())
	if err := tbl.Update(Row{I(1)}, map[string]Value{"age": I(31)}); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Get(Row{I(1)})
	if v, _ := got[3].Int(); v != 31 {
		t.Fatalf("age = %d", v)
	}
}

func TestUpdateKeyImmutable(t *testing.T) {
	tbl := newPatients(t, alice())
	err := tbl.Update(Row{I(1)}, map[string]Value{"id": I(7)})
	if !errors.Is(err, ErrKeyImmutable) {
		t.Fatalf("want ErrKeyImmutable, got %v", err)
	}
}

func TestUpdateMissingKey(t *testing.T) {
	tbl := newPatients(t)
	err := tbl.Update(Row{I(1)}, map[string]Value{"age": I(1)})
	if !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("want ErrKeyNotFound, got %v", err)
	}
}

func TestUpdateUnknownColumn(t *testing.T) {
	tbl := newPatients(t, alice())
	err := tbl.Update(Row{I(1)}, map[string]Value{"ghost": I(1)})
	if !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
}

func TestUpdateTypeChecked(t *testing.T) {
	tbl := newPatients(t, alice())
	err := tbl.Update(Row{I(1)}, map[string]Value{"age": S("old")})
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

func TestDeleteAndSwapIndex(t *testing.T) {
	tbl := newPatients(t, alice(), bob(), Row{I(3), S("carol"), Null(), I(25)})
	if err := tbl.Delete(Row{I(1)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("len = %d", tbl.Len())
	}
	// The swap-delete must keep the index pointing at the moved row.
	got, ok := tbl.Get(Row{I(3)})
	if !ok {
		t.Fatal("moved row lost")
	}
	if s, _ := got[1].Str(); s != "carol" {
		t.Fatalf("moved row corrupted: %v", got)
	}
	if err := tbl.Delete(Row{I(1)}); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("want ErrKeyNotFound, got %v", err)
	}
}

func TestUpsert(t *testing.T) {
	tbl := newPatients(t, alice())
	if err := tbl.Upsert(Row{I(1), S("alice"), S("Kyoto"), I(30)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
	got, _ := tbl.Get(Row{I(1)})
	if s, _ := got[2].Str(); s != "Kyoto" {
		t.Fatal("upsert did not replace")
	}
	if err := tbl.Upsert(bob()); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatal("upsert did not insert")
	}
}

func TestUpdateWhereDeleteWhere(t *testing.T) {
	tbl := newPatients(t, alice(), bob(), Row{I(3), S("carol"), S("Osaka"), I(25)})
	n, err := tbl.UpdateWhere(Eq("city", S("Osaka")), map[string]Value{"age": I(99)})
	if err != nil || n != 2 {
		t.Fatalf("UpdateWhere = %d, %v", n, err)
	}
	n, err = tbl.DeleteWhere(Cmp("age", OpGe, I(99)))
	if err != nil || n != 2 {
		t.Fatalf("DeleteWhere = %d, %v", n, err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestRowsCanonicalSorted(t *testing.T) {
	tbl := newPatients(t, Row{I(3), S("c"), Null(), I(1)}, Row{I(1), S("a"), Null(), I(1)}, Row{I(2), S("b"), Null(), I(1)})
	rows := tbl.RowsCanonical()
	for i := 0; i < len(rows)-1; i++ {
		a, _ := rows[i][0].Int()
		b, _ := rows[i+1][0].Int()
		if a >= b {
			t.Fatalf("not sorted: %d before %d", a, b)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tbl := newPatients(t, alice(), bob())
	count := 0
	err := tbl.Scan(func(Row) (bool, error) {
		count++
		return false, nil
	})
	if err != nil || count != 1 {
		t.Fatalf("scan stopped after %d rows, err %v", count, err)
	}
}

func TestScanPropagatesError(t *testing.T) {
	tbl := newPatients(t, alice())
	want := errors.New("boom")
	if err := tbl.Scan(func(Row) (bool, error) { return true, want }); !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
}

func TestTableValue(t *testing.T) {
	tbl := newPatients(t, alice())
	v, err := tbl.Value(Row{I(1)}, "name")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.Str(); s != "alice" {
		t.Fatalf("Value = %v", v)
	}
	if _, err := tbl.Value(Row{I(9)}, "name"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatal(err)
	}
	if _, err := tbl.Value(Row{I(1)}, "ghost"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatal(err)
	}
}

func TestTableEqualIgnoresInsertionOrder(t *testing.T) {
	a := newPatients(t, alice(), bob())
	b := newPatients(t, bob(), alice())
	if !a.Equal(b) {
		t.Fatal("tables with same rows in different order should be equal")
	}
}

func TestTableHashInsensitiveToOrderAndName(t *testing.T) {
	a := newPatients(t, alice(), bob())
	b := newPatients(t, bob(), alice())
	if a.Hash() != b.Hash() {
		t.Fatal("hash depends on insertion order")
	}
	c := b.Renamed("other")
	if a.Hash() != c.Hash() {
		t.Fatal("hash depends on table name")
	}
}

func TestTableHashSensitiveToContent(t *testing.T) {
	a := newPatients(t, alice())
	b := newPatients(t, alice())
	if err := b.Update(Row{I(1)}, map[string]Value{"age": I(31)}); err != nil {
		t.Fatal(err)
	}
	if a.Hash() == b.Hash() {
		t.Fatal("hash insensitive to value change")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := newPatients(t, alice())
	b := a.Clone()
	if err := b.Update(Row{I(1)}, map[string]Value{"age": I(99)}); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Get(Row{I(1)})
	if v, _ := got[3].Int(); v != 30 {
		t.Fatal("clone aliases original")
	}
}

func TestRenamed(t *testing.T) {
	a := newPatients(t, alice())
	b := a.Renamed("other")
	if b.Name() != "other" || a.Name() != "patients" {
		t.Fatalf("names: %s, %s", a.Name(), b.Name())
	}
	if !a.Equal(b) {
		t.Fatal("rename must preserve contents")
	}
}

// TestIndexConsistencyQuick drives a random mutation sequence and checks
// that the key index always agrees with a linear scan.
func TestIndexConsistencyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := MustNewTable(patientSchema())
		live := make(map[int64]bool)
		for op := 0; op < 200; op++ {
			id := int64(rng.Intn(20))
			switch rng.Intn(3) {
			case 0:
				err := tbl.Insert(Row{I(id), S(fmt.Sprintf("p%d", id)), Null(), I(int64(rng.Intn(90)))})
				if live[id] {
					if !errors.Is(err, ErrDuplicateKey) {
						return false
					}
				} else if err != nil {
					return false
				} else {
					live[id] = true
				}
			case 1:
				err := tbl.Delete(Row{I(id)})
				if live[id] {
					if err != nil {
						return false
					}
					delete(live, id)
				} else if !errors.Is(err, ErrKeyNotFound) {
					return false
				}
			case 2:
				err := tbl.Update(Row{I(id)}, map[string]Value{"age": I(int64(rng.Intn(90)))})
				if live[id] && err != nil {
					return false
				}
				if !live[id] && !errors.Is(err, ErrKeyNotFound) {
					return false
				}
			}
		}
		if tbl.Len() != len(live) {
			return false
		}
		for id := range live {
			if !tbl.Has(Row{I(id)}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
