// Package reldb implements a small in-memory relational engine: typed
// values, schemas with primary keys, tables with key indexes, predicates,
// relational operators (projection, selection, rename, natural join),
// mutation primitives, table diffing, and a deterministic canonical
// encoding used for hashing and for shipping share payloads between peers.
//
// It is the storage substrate of the paper's architecture: every peer keeps
// its full medical records ("sources") and the fine-grained shared pieces
// ("views") as reldb tables in a local reldb.Database.
package reldb

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindTime
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name produced by Kind.String back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "null":
		return KindNull, nil
	case "string":
		return KindString, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "bool":
		return KindBool, nil
	case "time":
		return KindTime, nil
	default:
		return KindNull, fmt.Errorf("reldb: unknown kind %q", s)
	}
}

// Value is an immutable typed scalar. The zero Value is SQL NULL.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
	t    time.Time
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// S returns a string value.
func S(s string) Value { return Value{kind: KindString, s: s} }

// I returns an integer value.
func I(i int64) Value { return Value{kind: KindInt, i: i} }

// F returns a float value.
func F(f float64) Value { return Value{kind: KindFloat, f: f} }

// B returns a boolean value.
func B(b bool) Value { return Value{kind: KindBool, b: b} }

// T returns a time value, truncated to microseconds in UTC so that the
// canonical encoding round-trips through JSON.
func T(t time.Time) Value { return Value{kind: KindTime, t: t.UTC().Truncate(time.Microsecond)} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload; ok is false if the kind is not string.
func (v Value) Str() (string, bool) { return v.s, v.kind == KindString }

// Int returns the integer payload; ok is false if the kind is not int.
func (v Value) Int() (int64, bool) { return v.i, v.kind == KindInt }

// Float returns the float payload; ok is false if the kind is not float.
func (v Value) Float() (float64, bool) { return v.f, v.kind == KindFloat }

// Bool returns the bool payload; ok is false if the kind is not bool.
func (v Value) Bool() (bool, bool) { return v.b, v.kind == KindBool }

// Time returns the time payload; ok is false if the kind is not time.
func (v Value) Time() (time.Time, bool) { return v.t, v.kind == KindTime }

// Equal reports deep equality of two values, including kind.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindBool:
		return v.b == o.b
	case KindTime:
		return v.t.Equal(o.t)
	}
	return false
}

// Compare orders values: first by kind, then by payload. NULL sorts lowest.
// The result is -1, 0, or +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	case KindInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case !v.b && o.b:
			return -1
		case v.b && !o.b:
			return 1
		}
		return 0
	case KindTime:
		switch {
		case v.t.Before(o.t):
			return -1
		case v.t.After(o.t):
			return 1
		}
		return 0
	}
	return 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindTime:
		return v.t.Format(time.RFC3339Nano)
	}
	return "?"
}

// AppendCanonical appends a deterministic, self-delimiting binary encoding
// of the value to dst. The encoding is kind byte followed by a fixed-width
// or length-prefixed payload, so distinct values never share an encoding.
func (v Value) AppendCanonical(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindString:
		dst = binary.BigEndian.AppendUint64(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindInt:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindTime:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.t.UnixMicro()))
	}
	return dst
}

// AppendOrdered appends an order-preserving, self-delimiting binary
// encoding of the value to dst: bytewise lexicographic comparison of two
// encodings agrees with Value.Compare (kind first, then payload), and no
// encoding is a proper prefix of another. It is the *storage key*
// encoding — tables key their persistent row map with it so that
// in-order tree traversal yields canonical (key-sorted) row order and
// composite secondary-index keys support prefix scans. It is distinct
// from AppendCanonical (the hashing/wire encoding): a length-prefixed
// string encoding cannot be order-preserving ("b" must sort before
// "aa"), so strings here are escaped and terminated instead, and signed
// payloads have their sign bit flipped.
//
// NaN floats order by their raw bit patterns — sign-clear NaNs above
// +Inf, sign-set NaNs below -Inf — whereas Compare treats NaN as
// incomparable; and negative zero keeps its sign bit (encoding below
// +0.0) whereas Compare and Equal treat -0 == +0. Tables never rely on
// a particular order for either, only on determinism.
func (v Value) AppendOrdered(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindString:
		// 0x00 bytes are escaped as 0x00 0xFF and the string is closed
		// with 0x00 0x01, so comparisons stop at the right boundary: a
		// proper prefix sorts first, and an embedded NUL (0x00 0xFF)
		// sorts after any terminator (0x00 0x01).
		for i := 0; i < len(v.s); i++ {
			if c := v.s[i]; c == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, c)
			}
		}
		dst = append(dst, 0x00, 0x01)
	case KindInt:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.i)^(1<<63))
	case KindFloat:
		bits := math.Float64bits(v.f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip everything (larger magnitude sorts first)
		} else {
			bits |= 1 << 63 // non-negative: set the sign bit above all negatives
		}
		dst = binary.BigEndian.AppendUint64(dst, bits)
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindTime:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.t.UnixMicro())^(1<<63))
	}
	return dst
}

// valueJSON is the wire representation of a Value.
type valueJSON struct {
	Kind string `json:"k"`
	Val  string `json:"v,omitempty"`
}

// MarshalJSON encodes the value as {"k":kind,"v":payload}.
func (v Value) MarshalJSON() ([]byte, error) {
	w := valueJSON{Kind: v.kind.String()}
	switch v.kind {
	case KindTime:
		w.Val = v.t.Format(time.RFC3339Nano)
	case KindNull:
	default:
		w.Val = v.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a value encoded by MarshalJSON.
func (v *Value) UnmarshalJSON(data []byte) error {
	var w valueJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	k, err := ParseKind(w.Kind)
	if err != nil {
		return err
	}
	switch k {
	case KindNull:
		*v = Null()
	case KindString:
		*v = S(w.Val)
	case KindInt:
		i, err := strconv.ParseInt(w.Val, 10, 64)
		if err != nil {
			return fmt.Errorf("reldb: bad int value %q: %w", w.Val, err)
		}
		*v = I(i)
	case KindFloat:
		f, err := strconv.ParseFloat(w.Val, 64)
		if err != nil {
			return fmt.Errorf("reldb: bad float value %q: %w", w.Val, err)
		}
		*v = F(f)
	case KindBool:
		b, err := strconv.ParseBool(w.Val)
		if err != nil {
			return fmt.Errorf("reldb: bad bool value %q: %w", w.Val, err)
		}
		*v = B(b)
	case KindTime:
		t, err := time.Parse(time.RFC3339Nano, w.Val)
		if err != nil {
			return fmt.Errorf("reldb: bad time value %q: %w", w.Val, err)
		}
		*v = T(t)
	}
	return nil
}

// Row is an ordered tuple of values matching a table's column order.
type Row []Value

// Clone returns an independent copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows have identical length and values.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// AppendCanonical appends the canonical encodings of all values in order.
func (r Row) AppendCanonical(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(r)))
	for _, v := range r {
		dst = v.AppendCanonical(dst)
	}
	return dst
}
