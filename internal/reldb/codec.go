package reldb

import (
	"encoding/json"
	"fmt"
	"strings"
)

// tableDTO is the JSON wire form of a table.
type tableDTO struct {
	Schema Schema `json:"schema"`
	Rows   []Row  `json:"rows"`
}

// MarshalTable serializes the table (schema plus key-sorted rows) to JSON.
// The row order is canonical so the encoding is deterministic.
func MarshalTable(t *Table) ([]byte, error) {
	return json.Marshal(tableDTO{Schema: t.Schema(), Rows: t.RowsCanonical()})
}

// UnmarshalTable reconstructs a table serialized by MarshalTable.
func UnmarshalTable(data []byte) (*Table, error) {
	var dto tableDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("reldb: decoding table: %w", err)
	}
	t, err := NewTable(dto.Schema)
	if err != nil {
		return nil, err
	}
	for _, r := range dto.Rows {
		if err := t.Insert(r); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MarshalChangeset serializes a changeset to JSON.
func MarshalChangeset(cs Changeset) ([]byte, error) { return json.Marshal(cs) }

// UnmarshalChangeset reconstructs a changeset serialized by
// MarshalChangeset.
func UnmarshalChangeset(data []byte) (Changeset, error) {
	var cs Changeset
	if err := json.Unmarshal(data, &cs); err != nil {
		return Changeset{}, fmt.Errorf("reldb: decoding changeset: %w", err)
	}
	return cs, nil
}

// Format renders the table as an aligned text grid, in canonical row
// order, for CLI output and examples. It mirrors the tables of Fig. 1.
func Format(t *Table) string {
	cols := t.Schema().ColumnNames()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	rows := t.RowsCanonical()
	cells := make([][]string, len(rows))
	for ri, r := range rows {
		cells[ri] = make([]string, len(r))
		for ci, v := range r {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (key: %s)\n", t.Name(), strings.Join(t.Schema().Key, ", "))
	writeLine := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v)
			for p := len(v); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeLine(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeLine(sep)
	for _, r := range cells {
		writeLine(r)
	}
	return b.String()
}
