package reldb

import (
	"errors"
	"testing"
)

func TestProjectBasic(t *testing.T) {
	tbl := newPatients(t, alice(), bob())
	v, err := tbl.Project("v", []string{"id", "name"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 || len(v.Schema().Columns) != 2 {
		t.Fatalf("projection shape wrong: %v", v)
	}
	got, _ := v.Get(Row{I(1)})
	if !got.Equal(Row{I(1), S("alice")}) {
		t.Fatalf("row = %v", got)
	}
}

func TestProjectReordersColumns(t *testing.T) {
	tbl := newPatients(t, alice())
	v, err := tbl.Project("v", []string{"name", "id"}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := v.Get(Row{I(1)})
	if !got.Equal(Row{S("alice"), I(1)}) {
		t.Fatalf("row = %v", got)
	}
}

func TestProjectDedupesIdenticalRows(t *testing.T) {
	tbl := newPatients(t,
		Row{I(1), S("x"), S("Osaka"), I(1)},
		Row{I(2), S("x"), S("Osaka"), I(1)},
	)
	v, err := tbl.Project("v", []string{"name", "city"}, []string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 {
		t.Fatalf("want 1 deduped row, got %d", v.Len())
	}
}

func TestProjectNonFunctionalFails(t *testing.T) {
	tbl := newPatients(t,
		Row{I(1), S("x"), S("Osaka"), I(1)},
		Row{I(2), S("x"), S("Kyoto"), I(1)}, // same name, different city
	)
	_, err := tbl.Project("v", []string{"name", "city"}, []string{"name"})
	if !errors.Is(err, ErrSchemaInvalid) {
		t.Fatalf("want ErrSchemaInvalid, got %v", err)
	}
}

func TestSelect(t *testing.T) {
	tbl := newPatients(t, alice(), bob())
	v, err := tbl.Select("v", Eq("city", S("Osaka")))
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 || !v.Has(Row{I(1)}) {
		t.Fatalf("selection wrong: %d rows", v.Len())
	}
}

func TestSelectPredicateError(t *testing.T) {
	tbl := newPatients(t, alice())
	if _, err := tbl.Select("v", Eq("ghost", I(1))); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
}

func TestRenameColumns(t *testing.T) {
	tbl := newPatients(t, alice())
	v, err := tbl.RenameColumns("v", map[string]string{"id": "patient_id", "name": "full_name"})
	if err != nil {
		t.Fatal(err)
	}
	s := v.Schema()
	if !s.HasColumn("patient_id") || !s.HasColumn("full_name") || s.HasColumn("id") {
		t.Fatalf("columns = %v", s.ColumnNames())
	}
	if s.Key[0] != "patient_id" {
		t.Fatalf("key = %v", s.Key)
	}
	if _, ok := v.Get(Row{I(1)}); !ok {
		t.Fatal("row lost in rename")
	}
}

func TestRenameUnknownColumn(t *testing.T) {
	tbl := newPatients(t, alice())
	if _, err := tbl.RenameColumns("v", map[string]string{"ghost": "x"}); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
}

func visitsSchema() Schema {
	return Schema{
		Name: "visits",
		Columns: []Column{
			{Name: "visit", Type: KindInt},
			{Name: "id", Type: KindInt}, // shared with patients
			{Name: "note", Type: KindString},
		},
		Key: []string{"visit"},
	}
}

func TestNaturalJoin(t *testing.T) {
	patients := newPatients(t, alice(), bob())
	visits := MustNewTable(visitsSchema())
	visits.MustInsert(Row{I(100), I(1), S("checkup")})
	visits.MustInsert(Row{I(101), I(1), S("follow-up")})
	visits.MustInsert(Row{I(102), I(2), S("intake")})

	j, err := patients.NaturalJoin("j", visits)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("join rows = %d", j.Len())
	}
	s := j.Schema()
	// patients cols then visits extras; key = union.
	want := []string{"id", "name", "city", "age", "visit", "note"}
	got := s.ColumnNames()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("columns = %v, want %v", got, want)
		}
	}
	if len(s.Key) != 2 {
		t.Fatalf("key = %v", s.Key)
	}
}

func TestNaturalJoinNoSharedColumns(t *testing.T) {
	patients := newPatients(t)
	other := MustNewTable(Schema{
		Name:    "o",
		Columns: []Column{{Name: "z", Type: KindInt}},
		Key:     []string{"z"},
	})
	if _, err := patients.NaturalJoin("j", other); !errors.Is(err, ErrSchemaInvalid) {
		t.Fatalf("want ErrSchemaInvalid, got %v", err)
	}
}

func TestNaturalJoinTypeConflict(t *testing.T) {
	patients := newPatients(t)
	other := MustNewTable(Schema{
		Name:    "o",
		Columns: []Column{{Name: "id", Type: KindString}},
		Key:     []string{"id"},
	})
	if _, err := patients.NaturalJoin("j", other); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

func TestOrderBy(t *testing.T) {
	tbl := newPatients(t,
		Row{I(1), S("c"), Null(), I(30)},
		Row{I(2), S("a"), Null(), I(20)},
		Row{I(3), S("b"), Null(), I(20)},
	)
	rows, err := tbl.OrderBy("age", "name")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range rows {
		s, _ := r[1].Str()
		names = append(names, s)
	}
	if names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("order = %v", names)
	}
	if _, err := tbl.OrderBy("ghost"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatal(err)
	}
}

// TestNaturalJoinLeftKeyed pins the left-key-preserving fast path: when
// the right table's key columns are all part of the left key, the result
// is keyed exactly like the left table, unmatched left rows drop, and
// the output rides on the left tree (a pure semijoin shares it whole).
func TestNaturalJoinLeftKeyed(t *testing.T) {
	patients := newPatients(t, alice(), bob())

	insurance := MustNewTable(Schema{
		Name: "insurance",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "plan", Type: KindString},
		},
		Key: []string{"id"},
	})
	insurance.MustInsert(Row{I(1), S("gold")})

	j, err := patients.NaturalJoin("j", insurance)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Schema().Key; len(got) != 1 || got[0] != "id" {
		t.Fatalf("key = %v, want the left key", got)
	}
	if j.Len() != 1 {
		t.Fatalf("join rows = %d, want 1 (bob has no match and drops)", j.Len())
	}
	got, _ := j.Get(Row{I(1)})
	if !got.Equal(Row{I(1), S("alice"), S("Osaka"), I(30), S("gold")}) {
		t.Fatalf("row = %v", got)
	}

	// Semijoin (right side adds no columns): every surviving row is the
	// left row verbatim, so the whole tree — cached digests included — is
	// shared when everything matches.
	everyone := MustNewTable(Schema{
		Name:    "consent",
		Columns: []Column{{Name: "id", Type: KindInt}},
		Key:     []string{"id"},
	})
	everyone.MustInsert(Row{I(1)})
	everyone.MustInsert(Row{I(2)})
	patients.Hash()
	semi, err := patients.NaturalJoin("semi", everyone)
	if err != nil {
		t.Fatal(err)
	}
	if semi.Len() != 2 {
		t.Fatalf("semijoin rows = %d", semi.Len())
	}
	if _, ok := semi.CachedHash(); !ok {
		t.Fatal("full-match semijoin did not share the left tree's digest cache")
	}
	if semi.RowsRoot() != patients.RowsRoot() {
		t.Fatal("semijoin root differs from the left tree")
	}
}
