package reldb

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := S("hi"); v.Kind() != KindString {
		t.Fatalf("kind = %v", v.Kind())
	} else if s, ok := v.Str(); !ok || s != "hi" {
		t.Fatalf("Str = %q, %v", s, ok)
	}
	if v := I(-42); v.Kind() != KindInt {
		t.Fatalf("kind = %v", v.Kind())
	} else if i, ok := v.Int(); !ok || i != -42 {
		t.Fatalf("Int = %d, %v", i, ok)
	}
	if v := F(2.5); v.Kind() != KindFloat {
		t.Fatalf("kind = %v", v.Kind())
	} else if f, ok := v.Float(); !ok || f != 2.5 {
		t.Fatalf("Float = %g, %v", f, ok)
	}
	if v := B(true); v.Kind() != KindBool {
		t.Fatalf("kind = %v", v.Kind())
	} else if b, ok := v.Bool(); !ok || !b {
		t.Fatalf("Bool = %v, %v", b, ok)
	}
	now := time.Now()
	if v := T(now); v.Kind() != KindTime {
		t.Fatalf("kind = %v", v.Kind())
	} else if tt, ok := v.Time(); !ok || !tt.Equal(now.UTC().Truncate(time.Microsecond)) {
		t.Fatalf("Time = %v, %v", tt, ok)
	}
	if !Null().IsNull() {
		t.Fatal("Null not null")
	}
}

func TestValueAccessorWrongKind(t *testing.T) {
	if _, ok := S("x").Int(); ok {
		t.Fatal("Int on string should fail")
	}
	if _, ok := I(1).Str(); ok {
		t.Fatal("Str on int should fail")
	}
	if _, ok := Null().Bool(); ok {
		t.Fatal("Bool on null should fail")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{S("a"), S("a"), true},
		{S("a"), S("b"), false},
		{I(1), I(1), true},
		{I(1), F(1), false}, // kinds differ
		{F(math.NaN()), F(math.NaN()), true},
		{B(true), B(true), true},
		{Null(), Null(), true},
		{Null(), S(""), false},
		{T(time.Unix(5, 0)), T(time.Unix(5, 0)), true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareOrders(t *testing.T) {
	if I(1).Compare(I(2)) >= 0 {
		t.Fatal("1 < 2 expected")
	}
	if S("b").Compare(S("a")) <= 0 {
		t.Fatal("b > a expected")
	}
	if B(false).Compare(B(true)) >= 0 {
		t.Fatal("false < true expected")
	}
	if T(time.Unix(1, 0)).Compare(T(time.Unix(2, 0))) >= 0 {
		t.Fatal("earlier < later expected")
	}
	// Cross-kind: ordered by kind tag.
	if Null().Compare(S("")) >= 0 {
		t.Fatal("null sorts lowest")
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return I(a).Compare(I(b)) == -I(b).Compare(I(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	vals := []Value{
		S("hello"), S(""), I(0), I(-9e15), F(3.14159), F(-0.0), B(true),
		B(false), Null(), T(time.Date(2019, 4, 24, 12, 0, 0, 0, time.UTC)),
	}
	for _, v := range vals {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if !v.Equal(back) {
			t.Fatalf("round trip %v -> %s -> %v", v, raw, back)
		}
	}
}

func TestValueJSONRejectsGarbage(t *testing.T) {
	for _, raw := range []string{
		`{"k":"int","v":"notanint"}`,
		`{"k":"float","v":"x"}`,
		`{"k":"bool","v":"maybe"}`,
		`{"k":"time","v":"yesterday"}`,
		`{"k":"alien","v":"1"}`,
	} {
		var v Value
		if err := json.Unmarshal([]byte(raw), &v); err == nil {
			t.Errorf("unmarshal %s should fail", raw)
		}
	}
}

func TestCanonicalEncodingInjective(t *testing.T) {
	// Distinct values must never share a canonical encoding; this is what
	// keeps key indexing and hashing sound.
	vals := []Value{
		S("a"), S("ab"), S(""), I(0), I(1), F(0), F(1), B(false), B(true),
		Null(), T(time.Unix(0, 0)), I(97) /* 'a' */, S("\x00"), S("0"),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		enc := string(v.AppendCanonical(nil))
		if prev, dup := seen[enc]; dup {
			t.Fatalf("encoding collision between %v and %v", prev, v)
		}
		seen[enc] = v
	}
}

func TestCanonicalEncodingQuickStrings(t *testing.T) {
	f := func(a, b string) bool {
		ea := string(S(a).AppendCanonical(nil))
		eb := string(S(b).AppendCanonical(nil))
		return (a == b) == (ea == eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{I(1), S("x")}
	c := r.Clone()
	c[1] = S("y")
	if s, _ := r[1].Str(); s != "x" {
		t.Fatal("clone aliases original")
	}
}

func TestRowEqual(t *testing.T) {
	if !(Row{I(1), S("a")}).Equal(Row{I(1), S("a")}) {
		t.Fatal("equal rows not equal")
	}
	if (Row{I(1)}).Equal(Row{I(1), I(2)}) {
		t.Fatal("different arity equal")
	}
	if (Row{I(1)}).Equal(Row{I(2)}) {
		t.Fatal("different values equal")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindNull, KindString, KindInt, KindFloat, KindBool, KindTime} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("sandwich"); err == nil {
		t.Fatal("unknown kind should fail")
	}
}
