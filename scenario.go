package medshare

import (
	"context"
	"encoding/hex"
	"fmt"
	"time"

	"medshare/internal/bx"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/p2p/faultnet"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// Fig1Scenario is the running instantiation of the paper's Fig. 1 data
// distribution: three stakeholders over one network, with local tables
//
//	Patient    D1  = a0-a4
//	Researcher D2  = a1, a5, a6 (keyed by medication name)
//	Doctor     D3  = a0-a2, a4, a5
//
// and two registered shares
//
//	"D13&D31" (Patient <-> Doctor):    a0, a1, a2, a4
//	"D23&D32" (Researcher <-> Doctor): a1, a5
//
// with the write permissions of Fig. 3: on D13&D31 the doctor may update
// everything and the patient only clinical data; on D23&D32 medication
// name is writable by both and mechanism of action by the researcher.
type Fig1Scenario struct {
	Network    *Network
	Patient    *core.Peer
	Doctor     *core.Peer
	Researcher *core.Peer
	// ShareD13 and ShareD23 are the two share IDs.
	ShareD13 string
	ShareD23 string
}

// Share identifiers used by the scenario.
const (
	ShareIDD13 = "D13&D31"
	ShareIDD23 = "D23&D32"
)

// NewFig1Scenario builds the scenario on a fresh network with nRecords
// synthetic full records (nRecords <= 0 loads the exact two rows of
// Fig. 1). Shares are registered by the doctor, as in Section III-C2.
func NewFig1Scenario(ctx context.Context, cfg NetworkConfig, nRecords int, seed int64) (*Fig1Scenario, error) {
	nw, err := NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	sc, err := PopulateFig1(ctx, nw, nRecords, seed)
	if err != nil {
		nw.Stop()
		return nil, err
	}
	return sc, nil
}

// PopulateFig1 builds the Fig. 1 stakeholders and shares on an existing
// network.
func PopulateFig1(ctx context.Context, nw *Network, nRecords int, seed int64) (*Fig1Scenario, error) {
	var full *reldb.Table
	if nRecords <= 0 {
		full = workload.Fig1Data("full")
	} else {
		full = workload.Generate("full", nRecords, seed)
	}

	patient, err := nw.NewPeer("Patient", 0)
	if err != nil {
		return nil, err
	}
	doctor, err := nw.NewPeer("Doctor", nw.Nodes()-1)
	if err != nil {
		return nil, err
	}
	researcher, err := nw.NewPeer("Researcher", nw.Nodes()/2)
	if err != nil {
		return nil, err
	}

	// Local full tables: each stakeholder holds its Fig. 1 slice of the
	// full records in its own database.
	d1, err := full.Project("D1", workload.PatientCols, nil)
	if err != nil {
		return nil, err
	}
	d2, err := full.Project("D2", workload.ResearcherCols, []string{workload.ColMedication})
	if err != nil {
		return nil, err
	}
	d3, err := full.Project("D3", workload.DoctorCols, nil)
	if err != nil {
		return nil, err
	}
	patient.DB().PutTable(d1)
	researcher.DB().PutTable(d2)
	doctor.DB().PutTable(d3)

	sc := &Fig1Scenario{
		Network: nw, Patient: patient, Doctor: doctor, Researcher: researcher,
		ShareD13: ShareIDD13, ShareD23: ShareIDD23,
	}

	// Fig. 3 permissions for D13&D31: Doctor everywhere, Patient only on
	// clinical data.
	permD13 := map[string][]identity.Address{
		workload.ColPatientID:  {doctor.Address()},
		workload.ColMedication: {doctor.Address()},
		workload.ColDosage:     {doctor.Address()},
		workload.ColClinical:   {patient.Address(), doctor.Address()},
	}
	// Fig. 3 permissions for D23&D32: medication by both, mechanism by
	// the researcher.
	permD23 := map[string][]identity.Address{
		workload.ColMedication: {doctor.Address(), researcher.Address()},
		workload.ColMechanism:  {researcher.Address()},
	}

	// The doctor initiates both shares (Section III-C2), deriving D31 and
	// D32 from D3.
	err = doctor.RegisterShare(ctx, core.RegisterShareArgs{
		ID:          ShareIDD13,
		SourceTable: "D3",
		Lens:        LensD31(),
		ViewName:    "D31",
		Peers:       []identity.Address{patient.Address(), doctor.Address()},
		WritePerm:   permD13,
		Authority:   doctor.Address(),
	})
	if err != nil {
		return nil, fmt.Errorf("registering %s: %w", ShareIDD13, err)
	}
	err = doctor.RegisterShare(ctx, core.RegisterShareArgs{
		ID:          ShareIDD23,
		SourceTable: "D3",
		Lens:        LensD32(),
		ViewName:    "D32",
		Peers:       []identity.Address{researcher.Address(), doctor.Address()},
		WritePerm:   permD23,
		Authority:   researcher.Address(),
	})
	if err != nil {
		return nil, fmt.Errorf("registering %s: %w", ShareIDD23, err)
	}

	// Counterparties bind their side of each share with their own lenses.
	// On multi-node networks the registration block must gossip to their
	// nodes first.
	if _, err := patient.WaitForShare(ctx, ShareIDD13); err != nil {
		return nil, err
	}
	if err := patient.AttachShare(ShareIDD13, "D1", LensD13(), "D13"); err != nil {
		return nil, err
	}
	if _, err := researcher.WaitForShare(ctx, ShareIDD23); err != nil {
		return nil, err
	}
	if err := researcher.AttachShare(ShareIDD23, "D2", LensD23(), "D23"); err != nil {
		return nil, err
	}
	return sc, nil
}

// LensD13 derives D13 (a0, a1, a2, a4) from the patient's D1. The patient
// side accepts doctor-initiated row creation and deletion: a new patient
// row arriving through the share materializes in D1 with a placeholder
// address (the only D1 attribute hidden from the view).
func LensD13() Lens {
	return bx.Project("D13", workload.ShareD13Cols, nil).
		WithDelete(bx.PolicyApply).
		WithInsert(bx.PolicyApply, map[string]reldb.Value{
			workload.ColAddress: reldb.S("unknown"),
		})
}

// LensD31 derives D31 (a0, a1, a2, a4) from the doctor's D3. Structural
// edits through the view are forbidden on the doctor side: the patient
// lacks write permission for them anyway, and the doctor edits D3
// directly.
func LensD31() Lens {
	return bx.Project("D31", workload.ShareD13Cols, nil)
}

// LensD23 derives D23 (a1, a5) from the researcher's D2. The researcher
// side accepts doctor-initiated medication renames (a delete+insert on
// the medication-keyed view); the hidden mode-of-action column defaults
// until the researcher fills it in.
func LensD23() Lens {
	return bx.Project("D23", workload.ShareD23Cols, []string{workload.ColMedication}).
		WithDelete(bx.PolicyApply).
		WithInsert(bx.PolicyApply, map[string]reldb.Value{
			workload.ColMode: reldb.S("MoA-pending"),
		})
}

// LensD32 derives D32 (a1, a5) from the doctor's D3. The view key is the
// medication name — not D3's key — so several patient rows on the same
// medication collapse into one shared row, exactly Fig. 1's D32.
func LensD32() Lens {
	return bx.Project("D32", workload.ShareD23Cols, []string{workload.ColMedication})
}

// Stop shuts the scenario's network down.
func (sc *Fig1Scenario) Stop() { sc.Network.Stop() }

// JoinShareScenario is the prescriptions ⋈ formulary instantiation: a
// pharmacist holds only the prescription slice (a0, a1, a4) plus a
// read-only formulary reference and derives its replica of the shared
// view by *joining* the two (each prescription enriched with its
// mechanism of action); the doctor derives the same view by projection
// from its richer D3. Incoming updates on the pharmacist side therefore
// embed through JoinLens.PutDelta — the join lens's backward path,
// exercised end to end rather than only in microbenches.
type JoinShareScenario struct {
	Network    *Network
	Pharmacist *core.Peer
	Doctor     *core.Peer
	// ShareRx is the share ID.
	ShareRx string
}

// ShareIDRx identifies the prescriptions⋈formulary share.
const ShareIDRx = "RXF&D3F"

// RxViewCols are the shared view's columns: the prescription slice plus
// the joined-in mechanism (the column order of prescriptions ⋈
// formulary).
var RxViewCols = []string{
	workload.ColPatientID, workload.ColMedication,
	workload.ColDosage, workload.ColMechanism,
}

// LensRxJoin derives the pharmacist's replica RXF: prescriptions joined
// with the formulary generated under seed (the reference rides in the
// lens spec, so the doctor could rebuild the identical lens on-chain).
func LensRxJoin(seed int64) Lens {
	return bx.Join("RXF", workload.Formulary("formulary", seed))
}

// LensD3F derives the doctor's replica D3F by projecting D3 onto the
// shared columns.
func LensD3F() Lens {
	return bx.Project("D3F", RxViewCols, nil)
}

// NewJoinShareScenario builds the pharmacist/doctor pair on a fresh
// network with nRecords synthetic records under seed. The doctor may
// write dosage and mechanism; the pharmacist only dosage (it holds no
// mechanism data of its own — the reference is read-only).
func NewJoinShareScenario(ctx context.Context, cfg NetworkConfig, nRecords int, seed int64) (*JoinShareScenario, error) {
	nw, err := NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	sc, err := PopulateJoinShare(ctx, nw, nRecords, seed)
	if err != nil {
		nw.Stop()
		return nil, err
	}
	return sc, nil
}

// PopulateJoinShare builds the join-share stakeholders on an existing
// network.
func PopulateJoinShare(ctx context.Context, nw *Network, nRecords int, seed int64) (*JoinShareScenario, error) {
	full := workload.Generate("full", nRecords, seed)

	pharmacist, err := nw.NewPeer("Pharmacist", 0)
	if err != nil {
		return nil, err
	}
	doctor, err := nw.NewPeer("Doctor", nw.Nodes()-1)
	if err != nil {
		return nil, err
	}

	rx, err := full.Project("RX", workload.PrescriptionCols, nil)
	if err != nil {
		return nil, err
	}
	d3, err := full.Project("D3", workload.DoctorCols, nil)
	if err != nil {
		return nil, err
	}
	pharmacist.DB().PutTable(rx)
	doctor.DB().PutTable(d3)

	perm := map[string][]identity.Address{
		workload.ColDosage:    {pharmacist.Address(), doctor.Address()},
		workload.ColMechanism: {doctor.Address()},
	}
	err = pharmacist.RegisterShare(ctx, core.RegisterShareArgs{
		ID:          ShareIDRx,
		SourceTable: "RX",
		Lens:        LensRxJoin(seed),
		ViewName:    "RXF",
		Peers:       []identity.Address{pharmacist.Address(), doctor.Address()},
		WritePerm:   perm,
		Authority:   doctor.Address(),
	})
	if err != nil {
		return nil, fmt.Errorf("registering %s: %w", ShareIDRx, err)
	}
	if _, err := doctor.WaitForShare(ctx, ShareIDRx); err != nil {
		return nil, err
	}
	if err := doctor.AttachShare(ShareIDRx, "D3", LensD3F(), "D3F"); err != nil {
		return nil, err
	}
	return &JoinShareScenario{
		Network: nw, Pharmacist: pharmacist, Doctor: doctor, ShareRx: ShareIDRx,
	}, nil
}

// Stop shuts the scenario's network down.
func (sc *JoinShareScenario) Stop() { sc.Network.Stop() }

// ChaosConfig tunes the chaos suite: an update storm driven through the
// Fig. 1 topology while the data channel drops, duplicates, delays, and
// reorders messages, a full three-way partition, and a peer crash mid
// cascade. Zero values select the defaults noted per field.
type ChaosConfig struct {
	// Records is the synthetic record count (0 → 24).
	Records int
	// Updates is the lossy-phase storm length (0 → 6).
	Updates int
	// Seed drives every random choice — the fault fabric's sampling and
	// the workload — so a run is reproducible end to end.
	Seed int64
	// DropRate is the request-loss probability on the data channel while
	// faults are active (0 → 0.35; the acceptance floor is 0.30).
	DropRate float64
	// HangRate is the probability a request hangs until its per-attempt
	// deadline instead of failing fast (0 → 0.05).
	HangRate float64
	// BlockInterval is the chain's block period (0 → 2ms).
	BlockInterval time.Duration
	// RepairInterval is each peer's background anti-entropy repair period
	// (0 → 20ms).
	RepairInterval time.Duration
	// DataTransport is DataTransportMem (default) or DataTransportTCP.
	DataTransport string
	// GroupCommit runs the chain with demand-driven batched block
	// production (NetworkConfig.GroupCommitWindow): the storm's
	// multi-share proposals ride group commits instead of one block
	// interval each, so the suite exercises the batched commit path
	// under the same faults.
	GroupCommit bool
	// Durable backs every peer with an in-memory durable store
	// (NetworkConfig.DurablePeers), so each replica commit is also a
	// store commit and the run's final images can be inspected for
	// crash-recovery correctness.
	Durable bool
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Records <= 0 {
		c.Records = 24
	}
	if c.Updates <= 0 {
		c.Updates = 6
	}
	if c.DropRate <= 0 {
		c.DropRate = 0.35
	}
	if c.HangRate < 0 {
		c.HangRate = 0
	} else if c.HangRate == 0 {
		c.HangRate = 0.05
	}
	if c.BlockInterval <= 0 {
		c.BlockInterval = 2 * time.Millisecond
	}
	if c.RepairInterval <= 0 {
		c.RepairInterval = 20 * time.Millisecond
	}
	return c
}

// ChaosReport summarizes one chaos run: how much work went through, what
// the fabric did to it, and what each peer's recovery machinery had to
// do. ConvergeAfterHeal is the headline number — how long the network
// needed to bring every replica back to the on-chain Merkle root once
// the last fault was lifted.
type ChaosReport struct {
	Updates           int
	Elapsed           time.Duration
	ConvergeAfterHeal time.Duration
	Counters          faultnet.Counters
	PeerStats         map[string]core.Stats
}

// ChaosScenario is the Fig. 1 topology under a fault-injection fabric.
// Beyond Fig. 3, the patient is granted medication write permission on
// D13&D31 so an update storm can drive the full cascade chain
// Patient → Doctor → Researcher (a medication rename propagates from D13
// through the doctor's D3 into D23&D32).
type ChaosScenario struct {
	*Fig1Scenario
	Fabric *faultnet.Fabric
	cfg    ChaosConfig
}

// NewChaosScenario builds the Fig. 1 stakeholders on a fault-injected
// network with hardened peers (per-attempt RPC deadlines, retry backoff,
// endpoint quarantine, background repair loop).
func NewChaosScenario(ctx context.Context, cfg ChaosConfig) (*ChaosScenario, error) {
	cfg = cfg.withDefaults()
	var window time.Duration
	if cfg.GroupCommit {
		window = 500 * time.Microsecond
	}
	nw, err := NewNetwork(NetworkConfig{
		BlockInterval:      cfg.BlockInterval,
		GroupCommitWindow:  window,
		Seed:               cfg.Seed,
		FaultInjection:     true,
		DurablePeers:       cfg.Durable,
		DataTransport:      cfg.DataTransport,
		PeerResyncInterval: cfg.RepairInterval,
		PeerRPCTimeout:     150 * time.Millisecond,
		PeerRetry:          core.Backoff{Base: 4 * time.Millisecond, Max: 60 * time.Millisecond, Attempts: 4},
		PeerHealth:         core.HealthPolicy{FailureThreshold: 4, Quarantine: 40 * time.Millisecond, MaxQuarantine: 250 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	fig, err := PopulateFig1(ctx, nw, cfg.Records, cfg.Seed)
	if err != nil {
		nw.Stop()
		return nil, err
	}
	// The cascade-chain permission (see type doc).
	err = fig.Doctor.SetPermission(ctx, ShareIDD13, workload.ColMedication,
		[]identity.Address{fig.Patient.Address(), fig.Doctor.Address()})
	if err != nil {
		nw.Stop()
		return nil, err
	}
	return &ChaosScenario{Fig1Scenario: fig, Fabric: nw.Fabric(), cfg: cfg}, nil
}

// patientKey returns the i-th synthetic patient id (Generate starts at
// 188, in homage to Fig. 1).
func (sc *ChaosScenario) patientKey(i int) int64 {
	return int64(188 + i%sc.cfg.Records)
}

// uniqueMedPatients returns, in ascending patient-id order, the patients
// whose medication no other patient shares. Renaming such a patient's
// medication is a clean key rename on the medication-keyed D23&D32
// (delete+insert with identical mechanism → Cols=[medication_name]); a
// shared medication would instead leave the old key alive and make the
// insert demand write permission on mechanism_of_action, which neither
// the doctor nor the patient holds.
func (sc *ChaosScenario) uniqueMedPatients() ([]int64, error) {
	d3, err := sc.Doctor.Source("D3")
	if err != nil {
		return nil, err
	}
	medIdx := d3.Schema().ColumnIndex(workload.ColMedication)
	idIdx := d3.Schema().ColumnIndex(workload.ColPatientID)
	rows, err := d3.OrderBy(workload.ColPatientID)
	if err != nil {
		return nil, err
	}
	count := make(map[string]int)
	for _, r := range rows {
		med, _ := r[medIdx].Str()
		count[med]++
	}
	var ids []int64
	for _, r := range rows {
		med, _ := r[medIdx].Str()
		if count[med] == 1 {
			id, _ := r[idIdx].Int()
			ids = append(ids, id)
		}
	}
	if len(ids) < 2 {
		return nil, fmt.Errorf("chaos: workload has %d uniquely-medicated patients, need 2 (change Seed or Records)", len(ids))
	}
	return ids, nil
}

// stormUpdate drives one finalized update through the lossy channel,
// rotating over the three stakeholders and both shares.
func (sc *ChaosScenario) stormUpdate(ctx context.Context, i int) error {
	switch i % 3 {
	case 0: // doctor edits a dosage in D3; propagates over D13&D31
		key := sc.patientKey(i)
		err := sc.Doctor.UpdateSource("D3", func(t *reldb.Table) error {
			return t.Update(reldb.Row{reldb.I(key)}, map[string]reldb.Value{
				workload.ColDosage: reldb.S(fmt.Sprintf("chaos dosage %d", i)),
			})
		})
		if err != nil {
			return err
		}
		results, err := sc.Doctor.SyncShares(ctx, "D3")
		if err != nil {
			return err
		}
		for _, r := range results {
			if err := sc.Doctor.WaitFinal(ctx, r.ShareID, r.Seq); err != nil {
				return err
			}
		}
		return nil
	case 1: // patient edits clinical data through the D13 view
		key := sc.patientKey(i)
		res, err := sc.Patient.UpdateView(ctx, sc.ShareD13, func(t *reldb.Table) error {
			return t.Update(reldb.Row{reldb.I(key)}, map[string]reldb.Value{
				workload.ColClinical: reldb.S(fmt.Sprintf("chaos-clinical-%d", i)),
			})
		})
		if err != nil {
			return err
		}
		return sc.Patient.WaitFinal(ctx, sc.ShareD13, res.Seq)
	default: // researcher edits a mechanism through the D23 view
		view, err := sc.Researcher.View(sc.ShareD23)
		if err != nil {
			return err
		}
		meds, err := view.OrderBy(workload.ColMedication)
		if err != nil {
			return err
		}
		if len(meds) == 0 {
			return fmt.Errorf("chaos: researcher view is empty")
		}
		med := meds[i%len(meds)][0]
		res, err := sc.Researcher.UpdateView(ctx, sc.ShareD23, func(t *reldb.Table) error {
			return t.Update(reldb.Row{med}, map[string]reldb.Value{
				workload.ColMechanism: reldb.S(fmt.Sprintf("chaos-mech-%d", i)),
			})
		})
		if err != nil {
			return err
		}
		return sc.Researcher.WaitFinal(ctx, sc.ShareD23, res.Seq)
	}
}

// shareReplicas maps each share to the peers holding a replica of it.
func (sc *ChaosScenario) shareReplicas(shareID string) map[string]*core.Peer {
	switch shareID {
	case ShareIDD13:
		return map[string]*core.Peer{"Patient": sc.Patient, "Doctor": sc.Doctor}
	default:
		return map[string]*core.Peer{"Researcher": sc.Researcher, "Doctor": sc.Doctor}
	}
}

// waitShareConverged polls until the share is finalized at or beyond
// minSeq with nothing pending and every replica's view hashes to the
// on-chain payload hash — the Merkle-root convergence criterion.
func (sc *ChaosScenario) waitShareConverged(ctx context.Context, shareID string, minSeq uint64) error {
	replicas := sc.shareReplicas(shareID)
	var last string
	for {
		meta, err := sc.Doctor.Meta(shareID)
		if err != nil {
			return err
		}
		switch {
		case meta.Seq < minSeq:
			last = fmt.Sprintf("chain at seq %d, want %d", meta.Seq, minSeq)
		case meta.Pending != nil:
			last = fmt.Sprintf("seq %d still pending", meta.Pending.Seq)
		case meta.LastPayloadHash == "":
			last = "share never updated"
		default:
			last = ""
			for name, p := range replicas {
				view, verr := p.View(shareID)
				if verr != nil {
					return verr
				}
				h := view.Hash()
				if hex.EncodeToString(h[:]) != meta.LastPayloadHash {
					last = fmt.Sprintf("%s diverged from the on-chain root at seq %d", name, meta.Seq)
					break
				}
			}
			if last == "" {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("chaos: %s did not converge: %s: %w", shareID, last, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Run drives the full chaos sequence — lossy update storm, three-way
// partition, doctor crash-restart mid-cascade — and then lifts every
// fault and waits for global convergence. No replica is ever manually
// resynced: recovery is retry backoff, endpoint quarantine probes, and
// the background repair loop alone.
func (sc *ChaosScenario) Run(ctx context.Context) (*ChaosReport, error) {
	fab := sc.Fabric
	report := &ChaosReport{PeerStats: map[string]core.Stats{}}
	renameTargets, err := sc.uniqueMedPatients()
	if err != nil {
		return report, err
	}
	start := time.Now()
	fill := func() {
		report.Elapsed = time.Since(start)
		report.Counters = fab.Counters()
		report.PeerStats["Patient"] = sc.Patient.Stats()
		report.PeerStats["Doctor"] = sc.Doctor.Stats()
		report.PeerStats["Researcher"] = sc.Researcher.Stats()
	}

	// Phase 1: update storm over a lossy, duplicating, delaying,
	// reordering channel. Every update still reaches finality — retries
	// and the repair loop push them through.
	fab.SetRequestLoss(sc.cfg.DropRate, sc.cfg.HangRate)
	fab.SetDropRate(sc.cfg.DropRate)
	fab.SetDuplicateRate(0.2)
	fab.SetReorderRate(0.2)
	fab.SetDelay(200*time.Microsecond, 500*time.Microsecond)
	for i := 0; i < sc.cfg.Updates; i++ {
		if err := sc.stormUpdate(ctx, i); err != nil {
			fill()
			return report, fmt.Errorf("chaos: storm update %d: %w", i, err)
		}
		report.Updates++
	}

	// Phase 2: full three-way partition. The doctor renames a medication
	// — one proposal per share — and both commit on-chain, but neither
	// counterparty can fetch the payload, so both stay pending until the
	// partition heals and quarantine probes let traffic flow again.
	fab.Partition(
		[]string{sc.Network.PeerEndpoint("Patient")},
		[]string{sc.Network.PeerEndpoint("Doctor")},
		[]string{sc.Network.PeerEndpoint("Researcher")},
	)
	err = sc.Doctor.UpdateSource("D3", func(t *reldb.Table) error {
		return t.Update(reldb.Row{reldb.I(renameTargets[0])}, map[string]reldb.Value{
			workload.ColMedication: reldb.S("PartitionMed"),
		})
	})
	if err != nil {
		fill()
		return report, err
	}
	results, err := sc.Doctor.SyncShares(ctx, "D3")
	if err != nil {
		fill()
		return report, fmt.Errorf("chaos: partitioned proposals: %w", err)
	}
	time.Sleep(8 * sc.cfg.RepairInterval) // let retry ladders exhaust against the partition
	fab.Heal()
	for _, r := range results {
		if err := sc.Doctor.WaitFinal(ctx, r.ShareID, r.Seq); err != nil {
			fill()
			return report, fmt.Errorf("chaos: %s after heal: %w", r.ShareID, err)
		}
		report.Updates++
	}

	// Phase 3: crash the doctor — the hub of both shares — and propose a
	// medication rename from the patient while it is down. The pending
	// D13 update's cascade into D23 cannot start until the doctor is
	// back. Restore it cold from pre-crash snapshots; its repair loop
	// must apply the pending update, acknowledge it, and carry the
	// cascade to the researcher, all through the still-lossy channel.
	snap13, err := sc.Doctor.SnapshotShare(sc.ShareD13)
	if err != nil {
		fill()
		return report, err
	}
	snap23, err := sc.Doctor.SnapshotShare(sc.ShareD23)
	if err != nil {
		fill()
		return report, err
	}
	metaD23, err := sc.Doctor.Meta(sc.ShareD23)
	if err != nil {
		fill()
		return report, err
	}
	fab.Blackhole(sc.Network.PeerEndpoint("Doctor"))
	sc.Doctor.Stop()

	res, err := sc.Patient.UpdateView(ctx, sc.ShareD13, func(t *reldb.Table) error {
		return t.Update(reldb.Row{reldb.I(renameTargets[1])}, map[string]reldb.Value{
			workload.ColMedication: reldb.S("CrashMed"),
		})
	})
	if err != nil {
		fill()
		return report, fmt.Errorf("chaos: proposal against crashed doctor: %w", err)
	}

	if err := sc.Doctor.RestoreShare(snap13); err != nil {
		fill()
		return report, err
	}
	if err := sc.Doctor.RestoreShare(snap23); err != nil {
		fill()
		return report, err
	}
	sc.Doctor.Restart()
	fab.Restore(sc.Network.PeerEndpoint("Doctor"))

	if err := sc.Patient.WaitFinal(ctx, sc.ShareD13, res.Seq); err != nil {
		fill()
		return report, fmt.Errorf("chaos: crash-restart D13 finality: %w", err)
	}
	report.Updates++
	if err := sc.waitShareConverged(ctx, sc.ShareD23, metaD23.Seq+1); err != nil {
		fill()
		return report, fmt.Errorf("chaos: cascade after crash-restart: %w", err)
	}
	report.Updates++

	// Final: lift every remaining fault and wait for global convergence
	// of both shares on every replica.
	fab.SetRequestLoss(0, 0)
	fab.SetDropRate(0)
	fab.SetDuplicateRate(0)
	fab.SetReorderRate(0)
	fab.SetDelay(0, 0)
	fab.Heal()
	healed := time.Now()
	if err := sc.waitShareConverged(ctx, sc.ShareD13, 1); err != nil {
		fill()
		return report, err
	}
	if err := sc.waitShareConverged(ctx, sc.ShareD23, 1); err != nil {
		fill()
		return report, err
	}
	report.ConvergeAfterHeal = time.Since(healed)
	fill()
	return report, nil
}
