package medshare

import (
	"context"
	"fmt"

	"medshare/internal/bx"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// Fig1Scenario is the running instantiation of the paper's Fig. 1 data
// distribution: three stakeholders over one network, with local tables
//
//	Patient    D1  = a0-a4
//	Researcher D2  = a1, a5, a6 (keyed by medication name)
//	Doctor     D3  = a0-a2, a4, a5
//
// and two registered shares
//
//	"D13&D31" (Patient <-> Doctor):    a0, a1, a2, a4
//	"D23&D32" (Researcher <-> Doctor): a1, a5
//
// with the write permissions of Fig. 3: on D13&D31 the doctor may update
// everything and the patient only clinical data; on D23&D32 medication
// name is writable by both and mechanism of action by the researcher.
type Fig1Scenario struct {
	Network    *Network
	Patient    *core.Peer
	Doctor     *core.Peer
	Researcher *core.Peer
	// ShareD13 and ShareD23 are the two share IDs.
	ShareD13 string
	ShareD23 string
}

// Share identifiers used by the scenario.
const (
	ShareIDD13 = "D13&D31"
	ShareIDD23 = "D23&D32"
)

// NewFig1Scenario builds the scenario on a fresh network with nRecords
// synthetic full records (nRecords <= 0 loads the exact two rows of
// Fig. 1). Shares are registered by the doctor, as in Section III-C2.
func NewFig1Scenario(ctx context.Context, cfg NetworkConfig, nRecords int, seed int64) (*Fig1Scenario, error) {
	nw, err := NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	sc, err := PopulateFig1(ctx, nw, nRecords, seed)
	if err != nil {
		nw.Stop()
		return nil, err
	}
	return sc, nil
}

// PopulateFig1 builds the Fig. 1 stakeholders and shares on an existing
// network.
func PopulateFig1(ctx context.Context, nw *Network, nRecords int, seed int64) (*Fig1Scenario, error) {
	var full *reldb.Table
	if nRecords <= 0 {
		full = workload.Fig1Data("full")
	} else {
		full = workload.Generate("full", nRecords, seed)
	}

	patient, err := nw.NewPeer("Patient", 0)
	if err != nil {
		return nil, err
	}
	doctor, err := nw.NewPeer("Doctor", nw.Nodes()-1)
	if err != nil {
		return nil, err
	}
	researcher, err := nw.NewPeer("Researcher", nw.Nodes()/2)
	if err != nil {
		return nil, err
	}

	// Local full tables: each stakeholder holds its Fig. 1 slice of the
	// full records in its own database.
	d1, err := full.Project("D1", workload.PatientCols, nil)
	if err != nil {
		return nil, err
	}
	d2, err := full.Project("D2", workload.ResearcherCols, []string{workload.ColMedication})
	if err != nil {
		return nil, err
	}
	d3, err := full.Project("D3", workload.DoctorCols, nil)
	if err != nil {
		return nil, err
	}
	patient.DB().PutTable(d1)
	researcher.DB().PutTable(d2)
	doctor.DB().PutTable(d3)

	sc := &Fig1Scenario{
		Network: nw, Patient: patient, Doctor: doctor, Researcher: researcher,
		ShareD13: ShareIDD13, ShareD23: ShareIDD23,
	}

	// Fig. 3 permissions for D13&D31: Doctor everywhere, Patient only on
	// clinical data.
	permD13 := map[string][]identity.Address{
		workload.ColPatientID:  {doctor.Address()},
		workload.ColMedication: {doctor.Address()},
		workload.ColDosage:     {doctor.Address()},
		workload.ColClinical:   {patient.Address(), doctor.Address()},
	}
	// Fig. 3 permissions for D23&D32: medication by both, mechanism by
	// the researcher.
	permD23 := map[string][]identity.Address{
		workload.ColMedication: {doctor.Address(), researcher.Address()},
		workload.ColMechanism:  {researcher.Address()},
	}

	// The doctor initiates both shares (Section III-C2), deriving D31 and
	// D32 from D3.
	err = doctor.RegisterShare(ctx, core.RegisterShareArgs{
		ID:          ShareIDD13,
		SourceTable: "D3",
		Lens:        LensD31(),
		ViewName:    "D31",
		Peers:       []identity.Address{patient.Address(), doctor.Address()},
		WritePerm:   permD13,
		Authority:   doctor.Address(),
	})
	if err != nil {
		return nil, fmt.Errorf("registering %s: %w", ShareIDD13, err)
	}
	err = doctor.RegisterShare(ctx, core.RegisterShareArgs{
		ID:          ShareIDD23,
		SourceTable: "D3",
		Lens:        LensD32(),
		ViewName:    "D32",
		Peers:       []identity.Address{researcher.Address(), doctor.Address()},
		WritePerm:   permD23,
		Authority:   researcher.Address(),
	})
	if err != nil {
		return nil, fmt.Errorf("registering %s: %w", ShareIDD23, err)
	}

	// Counterparties bind their side of each share with their own lenses.
	// On multi-node networks the registration block must gossip to their
	// nodes first.
	if _, err := patient.WaitForShare(ctx, ShareIDD13); err != nil {
		return nil, err
	}
	if err := patient.AttachShare(ShareIDD13, "D1", LensD13(), "D13"); err != nil {
		return nil, err
	}
	if _, err := researcher.WaitForShare(ctx, ShareIDD23); err != nil {
		return nil, err
	}
	if err := researcher.AttachShare(ShareIDD23, "D2", LensD23(), "D23"); err != nil {
		return nil, err
	}
	return sc, nil
}

// LensD13 derives D13 (a0, a1, a2, a4) from the patient's D1. The patient
// side accepts doctor-initiated row creation and deletion: a new patient
// row arriving through the share materializes in D1 with a placeholder
// address (the only D1 attribute hidden from the view).
func LensD13() Lens {
	return bx.Project("D13", workload.ShareD13Cols, nil).
		WithDelete(bx.PolicyApply).
		WithInsert(bx.PolicyApply, map[string]reldb.Value{
			workload.ColAddress: reldb.S("unknown"),
		})
}

// LensD31 derives D31 (a0, a1, a2, a4) from the doctor's D3. Structural
// edits through the view are forbidden on the doctor side: the patient
// lacks write permission for them anyway, and the doctor edits D3
// directly.
func LensD31() Lens {
	return bx.Project("D31", workload.ShareD13Cols, nil)
}

// LensD23 derives D23 (a1, a5) from the researcher's D2. The researcher
// side accepts doctor-initiated medication renames (a delete+insert on
// the medication-keyed view); the hidden mode-of-action column defaults
// until the researcher fills it in.
func LensD23() Lens {
	return bx.Project("D23", workload.ShareD23Cols, []string{workload.ColMedication}).
		WithDelete(bx.PolicyApply).
		WithInsert(bx.PolicyApply, map[string]reldb.Value{
			workload.ColMode: reldb.S("MoA-pending"),
		})
}

// LensD32 derives D32 (a1, a5) from the doctor's D3. The view key is the
// medication name — not D3's key — so several patient rows on the same
// medication collapse into one shared row, exactly Fig. 1's D32.
func LensD32() Lens {
	return bx.Project("D32", workload.ShareD23Cols, []string{workload.ColMedication})
}

// Stop shuts the scenario's network down.
func (sc *Fig1Scenario) Stop() { sc.Network.Stop() }

// JoinShareScenario is the prescriptions ⋈ formulary instantiation: a
// pharmacist holds only the prescription slice (a0, a1, a4) plus a
// read-only formulary reference and derives its replica of the shared
// view by *joining* the two (each prescription enriched with its
// mechanism of action); the doctor derives the same view by projection
// from its richer D3. Incoming updates on the pharmacist side therefore
// embed through JoinLens.PutDelta — the join lens's backward path,
// exercised end to end rather than only in microbenches.
type JoinShareScenario struct {
	Network    *Network
	Pharmacist *core.Peer
	Doctor     *core.Peer
	// ShareRx is the share ID.
	ShareRx string
}

// ShareIDRx identifies the prescriptions⋈formulary share.
const ShareIDRx = "RXF&D3F"

// RxViewCols are the shared view's columns: the prescription slice plus
// the joined-in mechanism (the column order of prescriptions ⋈
// formulary).
var RxViewCols = []string{
	workload.ColPatientID, workload.ColMedication,
	workload.ColDosage, workload.ColMechanism,
}

// LensRxJoin derives the pharmacist's replica RXF: prescriptions joined
// with the formulary generated under seed (the reference rides in the
// lens spec, so the doctor could rebuild the identical lens on-chain).
func LensRxJoin(seed int64) Lens {
	return bx.Join("RXF", workload.Formulary("formulary", seed))
}

// LensD3F derives the doctor's replica D3F by projecting D3 onto the
// shared columns.
func LensD3F() Lens {
	return bx.Project("D3F", RxViewCols, nil)
}

// NewJoinShareScenario builds the pharmacist/doctor pair on a fresh
// network with nRecords synthetic records under seed. The doctor may
// write dosage and mechanism; the pharmacist only dosage (it holds no
// mechanism data of its own — the reference is read-only).
func NewJoinShareScenario(ctx context.Context, cfg NetworkConfig, nRecords int, seed int64) (*JoinShareScenario, error) {
	nw, err := NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	sc, err := PopulateJoinShare(ctx, nw, nRecords, seed)
	if err != nil {
		nw.Stop()
		return nil, err
	}
	return sc, nil
}

// PopulateJoinShare builds the join-share stakeholders on an existing
// network.
func PopulateJoinShare(ctx context.Context, nw *Network, nRecords int, seed int64) (*JoinShareScenario, error) {
	full := workload.Generate("full", nRecords, seed)

	pharmacist, err := nw.NewPeer("Pharmacist", 0)
	if err != nil {
		return nil, err
	}
	doctor, err := nw.NewPeer("Doctor", nw.Nodes()-1)
	if err != nil {
		return nil, err
	}

	rx, err := full.Project("RX", workload.PrescriptionCols, nil)
	if err != nil {
		return nil, err
	}
	d3, err := full.Project("D3", workload.DoctorCols, nil)
	if err != nil {
		return nil, err
	}
	pharmacist.DB().PutTable(rx)
	doctor.DB().PutTable(d3)

	perm := map[string][]identity.Address{
		workload.ColDosage:    {pharmacist.Address(), doctor.Address()},
		workload.ColMechanism: {doctor.Address()},
	}
	err = pharmacist.RegisterShare(ctx, core.RegisterShareArgs{
		ID:          ShareIDRx,
		SourceTable: "RX",
		Lens:        LensRxJoin(seed),
		ViewName:    "RXF",
		Peers:       []identity.Address{pharmacist.Address(), doctor.Address()},
		WritePerm:   perm,
		Authority:   doctor.Address(),
	})
	if err != nil {
		return nil, fmt.Errorf("registering %s: %w", ShareIDRx, err)
	}
	if _, err := doctor.WaitForShare(ctx, ShareIDRx); err != nil {
		return nil, err
	}
	if err := doctor.AttachShare(ShareIDRx, "D3", LensD3F(), "D3F"); err != nil {
		return nil, err
	}
	return &JoinShareScenario{
		Network: nw, Pharmacist: pharmacist, Doctor: doctor, ShareRx: ShareIDRx,
	}, nil
}

// Stop shuts the scenario's network down.
func (sc *JoinShareScenario) Stop() { sc.Network.Stop() }
