package medshare

import (
	"context"
	"fmt"
	"time"

	"medshare/internal/chain"
	"medshare/internal/clock"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/light"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/p2p/faultnet"
	"medshare/internal/reldb"
	"medshare/internal/store"
)

// Consensus engine names for NetworkConfig.
const (
	ConsensusPoA = "poa"
	ConsensusPoW = "pow"
)

// Data-channel transport names for NetworkConfig.
const (
	DataTransportMem = "mem"
	DataTransportTCP = "tcp"
)

// NetworkConfig describes an in-process medshare network: blockchain
// nodes, the consensus engine, and the simulated data channel.
type NetworkConfig struct {
	// Name seeds the genesis block. Defaults to "medshare".
	Name string
	// Nodes is the number of blockchain nodes (default 1).
	Nodes int
	// Consensus selects ConsensusPoA (default) or ConsensusPoW.
	Consensus string
	// PoWDifficulty is the leading-zero-bit target under PoW (default 8).
	PoWDifficulty uint8
	// Miners is how many nodes mine under PoW (default 1; the rest
	// validate).
	Miners int
	// BlockInterval is the block production period (default 5ms —
	// private-chain speed; E6 sweeps this up to Ethereum's 12 s).
	BlockInterval time.Duration
	// MaxTxPerBlock bounds block size (default 256).
	MaxTxPerBlock int
	// GroupCommitWindow enables demand-driven block production on every
	// node: submissions kick the producer, which accumulates arrivals for
	// this window and commits them as one block (BlockInterval becomes
	// the idle fallback). Zero keeps interval-paced production.
	GroupCommitWindow time.Duration
	// Latency and Jitter configure the simulated network's one-way delay.
	Latency, Jitter time.Duration
	// DropRate is the one-way gossip loss probability.
	DropRate float64
	// Seed makes the simulated network's randomness reproducible.
	Seed int64
	// TimeScale divides all waits (block intervals, polls) — a TimeScale
	// of 1000 runs a modeled 12 s block interval in 12 ms. 0 or 1 means
	// real time.
	TimeScale float64
	// ProduceEmptyBlocks keeps producing blocks with no transactions.
	ProduceEmptyBlocks bool
	// PeerResyncInterval enables each peer's background anti-entropy
	// repair loop (recovery from missed notifications, missed finals, and
	// root mismatches). Zero disables it.
	PeerResyncInterval time.Duration
	// FaultInjection wraps every peer data endpoint in a faultnet.Fabric
	// (seeded with Seed) reachable via Network.Fabric — the chaos suite's
	// scriptable drop/delay/partition/blackhole layer.
	FaultInjection bool
	// DataTransport selects the peer data channel: DataTransportMem
	// (default, in-memory) or DataTransportTCP (real loopback TCP).
	DataTransport string
	// PeerRPCTimeout, PeerRetry, and PeerHealth tune every peer's
	// data-channel resilience (per-attempt deadline, retry backoff,
	// endpoint quarantine). Zero values keep the core defaults.
	PeerRPCTimeout time.Duration
	PeerRetry      core.Backoff
	PeerHealth     core.HealthPolicy
	// DurablePeers gives every peer a durable replica store backed by an
	// in-memory filesystem, reachable via Network.PeerFS /
	// Network.PeerStore — crash tests clone the filesystem (a byte-exact
	// kill -9 image) and reopen it to drive recovery.
	DurablePeers bool
}

// Network is a running in-process medshare deployment.
type Network struct {
	cfg        NetworkConfig
	mem        *p2p.MemNetwork
	fab        *faultnet.Fabric
	clk        clock.Clock
	nodes      []*node.Node
	dir        *core.Directory
	peers      []*core.Peer
	tcps       map[string]*p2p.TCPTransport
	peerFS     map[string]*store.MemFS
	peerStores map[string]*store.Store
	cancel     context.CancelFunc
}

// NewNetwork builds and starts an in-process network.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Name == "" {
		cfg.Name = "medshare"
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Consensus == "" {
		cfg.Consensus = ConsensusPoA
	}
	if cfg.BlockInterval <= 0 {
		cfg.BlockInterval = 5 * time.Millisecond
	}
	if cfg.PoWDifficulty == 0 {
		cfg.PoWDifficulty = 8
	}
	if cfg.Miners <= 0 {
		cfg.Miners = 1
	}

	var clk clock.Clock = clock.Real{}
	if cfg.TimeScale > 1 {
		clk = clock.Scaled{Inner: clock.Real{}, Factor: cfg.TimeScale}
	}

	memOpts := []p2p.MemOption{p2p.WithSeed(cfg.Seed)}
	if cfg.Latency > 0 || cfg.Jitter > 0 {
		memOpts = append(memOpts, p2p.WithLatency(cfg.Latency, cfg.Jitter))
	}
	if cfg.DropRate > 0 {
		memOpts = append(memOpts, p2p.WithDropRate(cfg.DropRate))
	}
	mem := p2p.NewMemNetwork(memOpts...)

	ids := make([]*identity.Identity, cfg.Nodes)
	addrs := make([]identity.Address, cfg.Nodes)
	for i := range ids {
		id, err := identity.New(fmt.Sprintf("node-%d", i))
		if err != nil {
			return nil, err
		}
		ids[i] = id
		addrs[i] = id.Address()
	}

	nw := &Network{
		cfg: cfg, mem: mem, clk: clk, dir: core.NewDirectory(),
		tcps:       make(map[string]*p2p.TCPTransport),
		peerFS:     make(map[string]*store.MemFS),
		peerStores: make(map[string]*store.Store),
	}
	if cfg.FaultInjection {
		nw.fab = faultnet.New(cfg.Seed)
	}
	for i := 0; i < cfg.Nodes; i++ {
		var engine consensus.Engine
		switch cfg.Consensus {
		case ConsensusPoA:
			engine = consensus.NewPoA(true, addrs...)
		case ConsensusPoW:
			engine = consensus.NewPoW(cfg.PoWDifficulty)
		default:
			return nil, fmt.Errorf("medshare: unknown consensus %q", cfg.Consensus)
		}
		var transport p2p.Transport
		if cfg.Nodes > 1 {
			transport = mem.Endpoint(fmt.Sprintf("node-%d", i))
		}
		n, err := node.New(node.Config{
			NetworkName:        cfg.Name,
			Identity:           ids[i],
			Engine:             engine,
			Registry:           contract.NewRegistry(sharereg.New()),
			BlockInterval:      cfg.BlockInterval,
			MaxTxPerBlock:      cfg.MaxTxPerBlock,
			GroupCommitWindow:  cfg.GroupCommitWindow,
			ProduceEmptyBlocks: cfg.ProduceEmptyBlocks,
			Clock:              clk,
			Transport:          transport,
		})
		if err != nil {
			return nil, err
		}
		nw.nodes = append(nw.nodes, n)
	}

	ctx, cancel := context.WithCancel(context.Background())
	nw.cancel = cancel
	for i, n := range nw.nodes {
		if cfg.Consensus == ConsensusPoW && i >= cfg.Miners {
			continue // validator only
		}
		n.Start(ctx)
	}
	return nw, nil
}

// Node returns the i-th blockchain node.
func (nw *Network) Node(i int) *node.Node { return nw.nodes[i] }

// Nodes returns the number of blockchain nodes.
func (nw *Network) Nodes() int { return len(nw.nodes) }

// Clock returns the network's (possibly scaled) clock.
func (nw *Network) Clock() clock.Clock { return nw.clk }

// DataDirectory returns the shared endpoint directory.
func (nw *Network) DataDirectory() *core.Directory { return nw.dir }

// Fabric returns the fault-injection fabric wrapping the peer data
// channel, or nil when NetworkConfig.FaultInjection is off.
func (nw *Network) Fabric() *faultnet.Fabric { return nw.fab }

// PeerEndpoint returns the data-channel endpoint name of a peer created
// as name — the handle faultnet partitions and blackholes go by.
func (nw *Network) PeerEndpoint(name string) string { return "peer-" + name }

// PeerStore returns the durable replica store of the named peer, or nil
// when the peer runs without one.
func (nw *Network) PeerStore(name string) *store.Store { return nw.peerStores[name] }

// PeerFS returns the in-memory filesystem behind the named peer's
// durable store (NetworkConfig.DurablePeers only). Cloning it captures
// a byte-exact kill -9 image for crash-recovery tests.
func (nw *Network) PeerFS(name string) *store.MemFS { return nw.peerFS[name] }

// PeerOptions tunes a peer beyond the network defaults.
type PeerOptions struct {
	// FanoutWorkers bounds the peer's concurrent share processing on
	// cascade, Resync, and SyncShares. 0 keeps the core default (8);
	// negative forces sequential fan-out (the pre-concurrency behavior,
	// kept for baselines and experiments).
	FanoutWorkers int
	// EventShards partitions the peer's event runtime into that many
	// per-shard loops (hash(shareID) → shard). 0 derives it from
	// FanoutWorkers/GOMAXPROCS; negative forces the single sequential
	// loop.
	EventShards int
	// Identity, when non-nil, binds the peer to a specific identity
	// instead of generating a fresh one — the restart path: a recovered
	// peer must present the same on-chain address its shares name.
	Identity *identity.Identity
	// Store, when non-nil, is the peer's durable replica store
	// (overrides the NetworkConfig.DurablePeers default).
	Store *store.Store
}

// NewPeer creates a stakeholder attached to the given node, with a fresh
// local database and a data-channel endpoint, and starts its event loop.
func (nw *Network) NewPeer(name string, nodeIndex int) (*core.Peer, error) {
	return nw.NewPeerWithOptions(name, nodeIndex, PeerOptions{})
}

// NewPeerWithOptions is NewPeer with explicit tuning.
func (nw *Network) NewPeerWithOptions(name string, nodeIndex int, opts PeerOptions) (*core.Peer, error) {
	if nodeIndex < 0 || nodeIndex >= len(nw.nodes) {
		return nil, fmt.Errorf("medshare: node index %d out of range", nodeIndex)
	}
	id := opts.Identity
	if id == nil {
		var err error
		id, err = identity.New(name)
		if err != nil {
			return nil, err
		}
	}
	endpoint := nw.PeerEndpoint(name)
	var transport p2p.Transport
	switch nw.cfg.DataTransport {
	case "", DataTransportMem:
		transport = nw.mem.Endpoint(endpoint)
	case DataTransportTCP:
		tt, err := p2p.NewTCPTransport(endpoint, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		for other, ot := range nw.tcps {
			tt.AddPeer(other, ot.Addr())
			ot.AddPeer(endpoint, tt.Addr())
		}
		nw.tcps[endpoint] = tt
		transport = tt
	default:
		return nil, fmt.Errorf("medshare: unknown data transport %q", nw.cfg.DataTransport)
	}
	if nw.fab != nil {
		transport = nw.fab.Wrap(transport)
	}
	st := opts.Store
	if st == nil && nw.cfg.DurablePeers {
		fs := store.NewMemFS()
		var err error
		st, err = store.Open(store.Options{FS: fs})
		if err != nil {
			return nil, err
		}
		nw.peerFS[name] = fs
	}
	if st != nil {
		nw.peerStores[name] = st
	}
	p, err := core.NewPeer(core.Config{
		Identity:       id,
		DB:             reldb.NewDatabase(name),
		Node:           nw.nodes[nodeIndex],
		Transport:      transport,
		Directory:      nw.dir,
		Clock:          nw.clk,
		ResyncInterval: nw.cfg.PeerResyncInterval,
		RPCTimeout:     nw.cfg.PeerRPCTimeout,
		Retry:          nw.cfg.PeerRetry,
		Health:         nw.cfg.PeerHealth,
		FanoutWorkers:  opts.FanoutWorkers,
		EventShards:    opts.EventShards,
		Store:          st,
	})
	if err != nil {
		return nil, err
	}
	p.Start()
	nw.peers = append(nw.peers, p)
	return p, nil
}

// NewLightClient attaches a header-only light client to the network: its
// own endpoint on the simulated network (so block gossip reaches it and
// invalidates its caches without polling), a consensus header verifier
// matching the network's engine, and a proof source pointing at the
// named serving peer. The client holds no replica and is not a sharing
// peer — every row it returns is verified against its own header chain.
// Requires the in-memory data transport; block gossip only flows on
// networks with more than one node (a single node has no transport to
// broadcast from), so invalidation-sensitive scenarios use Nodes >= 2.
func (nw *Network) NewLightClient(name, servingPeer string) (*light.Client, error) {
	if nw.cfg.DataTransport != "" && nw.cfg.DataTransport != DataTransportMem {
		return nil, fmt.Errorf("medshare: light clients require the in-memory data transport")
	}
	id, err := identity.New(name)
	if err != nil {
		return nil, err
	}
	var verify chain.HeaderVerifier
	switch nw.cfg.Consensus {
	case ConsensusPoA:
		addrs := make([]identity.Address, len(nw.nodes))
		for i, n := range nw.nodes {
			addrs[i] = n.Address()
		}
		verify = consensus.NewPoA(true, addrs...).VerifyHeader
	case ConsensusPoW:
		verify = consensus.NewPoW(nw.cfg.PoWDifficulty).VerifyHeader
	}
	tr := nw.mem.Endpoint("light-" + name)
	c, err := light.New(light.Config{
		Network: nw.cfg.Name,
		Verify:  verify,
		Source: &light.PeerSource{
			Transport: tr,
			Endpoint:  nw.PeerEndpoint(servingPeer),
			Identity:  id,
		},
	})
	if err != nil {
		return nil, err
	}
	tr.Handle(c.HandleGossip)
	return c, nil
}

// Stop halts peers and nodes.
func (nw *Network) Stop() {
	for _, p := range nw.peers {
		p.Stop()
	}
	for _, tt := range nw.tcps {
		tt.Close()
	}
	nw.cancel()
	for _, n := range nw.nodes {
		n.Stop()
	}
	for _, st := range nw.peerStores {
		_ = st.Close()
	}
}
