package medshare

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"medshare/internal/api"
	"medshare/internal/bx"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

// TestServingEdgeTCPEndToEnd drives the whole share lifecycle through
// the HTTP serving edge with real TCP underneath at both layers: two
// nodes gossiping blocks over TCP, two peers fetching payloads over the
// same transports, and an api.Server per peer on a real HTTP listener —
// the exact wiring of two `medshared -api` processes. Everything goes
// through api.Client: register on the doctor's edge, attach on the
// patient's (lens spec defaulted from chain), update via the doctor,
// then a proof-verified fetch of the cascaded value from the PATIENT's
// edge, and finally the audit trail.
func TestServingEdgeTCPEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	docID := identity.FromSeed("Doctor", "serve-1")
	patID := identity.FromSeed("Patient", "serve-2")
	authorities := []identity.Address{docID.Address(), patID.Address()}

	docT, err := p2p.NewTCPTransport("Doctor", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer docT.Close()
	patT, err := p2p.NewTCPTransport("Patient", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer patT.Close()
	docT.AddPeer("Patient", patT.Addr())
	patT.AddPeer("Doctor", docT.Addr())

	dir := core.NewDirectory()
	dir.Set(docID.Address(), "Doctor")
	dir.Set(patID.Address(), "Patient")

	mkNode := func(id *identity.Identity, tr p2p.Transport) *node.Node {
		n, err := node.New(node.Config{
			NetworkName:       "serving-e2e",
			Identity:          id,
			Engine:            consensus.NewPoA(true, authorities...),
			Registry:          contract.NewRegistry(sharereg.New()),
			BlockInterval:     5 * time.Millisecond,
			GroupCommitWindow: time.Millisecond,
			Transport:         tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Start(ctx)
		t.Cleanup(n.Stop)
		return n
	}
	docNode := mkNode(docID, docT)
	patNode := mkNode(patID, patT)

	schema := reldb.Schema{
		Name: "records",
		Columns: []reldb.Column{
			{Name: "pid", Type: reldb.KindInt},
			{Name: "dosage", Type: reldb.KindString},
		},
		Key: []string{"pid"},
	}
	mkPeer := func(id *identity.Identity, n *node.Node, tr p2p.Transport) *core.Peer {
		db := reldb.NewDatabase(id.Name)
		tbl := reldb.MustNewTable(schema)
		tbl.MustInsert(reldb.Row{reldb.I(1), reldb.S("low")})
		tbl.MustInsert(reldb.Row{reldb.I(2), reldb.S("low")})
		db.PutTable(tbl)
		p, err := core.NewPeer(core.Config{
			Identity: id, DB: db, Node: n, Transport: tr, Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		t.Cleanup(p.Stop)
		return p
	}
	doctor := mkPeer(docID, docNode, docT)
	patient := mkPeer(patID, patNode, patT)

	serve := func(p *core.Peer, n *node.Node) *api.Client {
		srv, err := api.New(api.Config{Peer: p, Node: n, CoalesceWindow: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lis)
		t.Cleanup(func() { hs.Close() })
		return &api.Client{BaseURL: "http://" + lis.Addr().String()}
	}
	docAPI := serve(doctor, docNode)
	patAPI := serve(patient, patNode)

	if err := docAPI.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	spec, err := bx.Spec{
		Op: bx.OpProject, ViewName: "docV", Cols: []string{"pid", "dosage"},
		OnDelete: bx.PolicyApply, OnInsert: bx.PolicyApply,
	}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	st, err := docAPI.Register(ctx, api.RegisterRequest{
		ID: "S", SourceTable: "records", ViewName: "docV",
		LensSpec: json.RawMessage(spec),
		Peers:    []string{docID.Address().String(), patID.Address().String()},
		WritePerm: map[string][]string{
			"dosage": {docID.Address().String()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "S" {
		t.Fatalf("registered %+v", st)
	}

	// The patient's edge learns about S from chain gossip, then attaches
	// without a lens spec — the server reuses the on-chain one.
	waitFor(t, 30*time.Second, func() bool {
		_, err := patient.Meta("S")
		return err == nil
	})
	if _, err := patAPI.Attach(ctx, "S", api.AttachRequest{SourceTable: "records", ViewName: "patV"}); err != nil {
		t.Fatal(err)
	}

	res, err := docAPI.Update(ctx, "S", []api.RowOp{{
		Op: "set", Key: []any{float64(1)}, Set: map[string]any{"dosage": "high"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoChange || res.Seq != 1 {
		t.Fatalf("update = %+v", res)
	}

	// The new value cascades to the patient over TCP; fetch it from the
	// PATIENT's serving edge with a membership proof and verify it
	// against that replica's own Merkle root.
	waitFor(t, 30*time.Second, func() bool {
		row, err := patAPI.Row(ctx, "S", []string{"1"}, false)
		if err != nil || len(row.Row) < 2 {
			return false
		}
		s, _ := row.Row[1].Str()
		return s == "high"
	})
	proved, err := patAPI.Row(ctx, "S", []string{"1"}, true)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := api.VerifyRow(proved)
	if err != nil || !ok {
		t.Fatalf("proof verification: ok=%v err=%v", ok, err)
	}
	if proved.Seq != 1 {
		t.Fatalf("patient serves seq %d, want 1", proved.Seq)
	}

	// The audit trail from either edge shows the full story.
	recs, err := docAPI.Audit(ctx, "S")
	if err != nil {
		t.Fatal(err)
	}
	var fns []string
	for _, r := range recs {
		if !r.OK {
			t.Fatalf("audit shows denial: %+v", r)
		}
		fns = append(fns, r.Fn)
	}
	joined := strings.Join(fns, ",")
	for _, want := range []string{"register", "request_update", "ack_update"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("audit trail %v missing %q", fns, want)
		}
	}

	// Both edges report ready once the cascade has settled.
	waitFor(t, 30*time.Second, func() bool {
		return docAPI.Readyz(ctx) == nil && patAPI.Readyz(ctx) == nil
	})
}
