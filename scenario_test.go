package medshare

import (
	"context"
	"testing"
	"time"

	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// fastNet returns a network config tuned for tests: single PoA node,
// millisecond blocks.
func fastNet() NetworkConfig {
	return NetworkConfig{BlockInterval: 2 * time.Millisecond}
}

// testCtx bounds every integration test.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func mustValue(t *testing.T, tbl *reldb.Table, key reldb.Row, col string) reldb.Value {
	t.Helper()
	v, err := tbl.Value(key, col)
	if err != nil {
		t.Fatalf("reading %s of %v: %v", col, key, err)
	}
	return v
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v", d)
}

// TestFig5Workflow drives the paper's Section III-E case end to end:
// the researcher updates a mechanism of action in D2, the change reaches
// the doctor's D3 through share D23&D32, and a subsequent doctor-side
// dosage change reaches the patient's D1 through share D13&D31.
func TestFig5Workflow(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	defer sc.Stop()

	// Step 1: researcher updates MeA1 on its source D2 locally.
	err = sc.Researcher.UpdateSource("D2", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.S("Ibuprofen")},
			map[string]reldb.Value{workload.ColMechanism: reldb.S("MeA1-revised")})
	})
	if err != nil {
		t.Fatalf("local update: %v", err)
	}

	// Steps 1-2: regenerate D23 and request the update on-chain.
	props, err := sc.Researcher.SyncShares(ctx, "D2")
	if err != nil {
		t.Fatalf("sync shares: %v", err)
	}
	if len(props) != 1 || props[0].ShareID != ShareIDD23 {
		t.Fatalf("expected one proposal on %s, got %+v", ShareIDD23, props)
	}

	// Steps 3-5 happen in the doctor's event loop; wait for finalization
	// (all peers acked).
	if err := sc.Researcher.WaitFinal(ctx, ShareIDD23, props[0].Seq); err != nil {
		t.Fatalf("waiting final: %v", err)
	}

	// The doctor's source D3 must now carry the revised mechanism.
	d3, err := sc.Doctor.Source("D3")
	if err != nil {
		t.Fatal(err)
	}
	got := mustValue(t, d3, reldb.Row{reldb.I(188)}, workload.ColMechanism)
	if s, _ := got.Str(); s != "MeA1-revised" {
		t.Fatalf("doctor D3 mechanism = %q, want MeA1-revised", s)
	}

	// The doctor's replica D32 and the researcher's D23 agree.
	d32, err := sc.Doctor.View(ShareIDD23)
	if err != nil {
		t.Fatal(err)
	}
	d23, err := sc.Researcher.View(ShareIDD23)
	if err != nil {
		t.Fatal(err)
	}
	if d32.Hash() != d23.Hash() {
		t.Fatalf("replicas diverged: D32 %x vs D23 %x", d32.Hash(), d23.Hash())
	}

	// Steps 7-11: the doctor decides to modify the dosage for patient 188
	// (the paper's continuation), which flows through D13&D31 to the
	// patient's D1.
	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("two tablets every 8h")})
	})
	if err != nil {
		t.Fatalf("doctor local update: %v", err)
	}
	props, err = sc.Doctor.SyncShares(ctx, "D3")
	if err != nil {
		t.Fatalf("doctor sync: %v", err)
	}
	if len(props) != 1 || props[0].ShareID != ShareIDD13 {
		t.Fatalf("expected one proposal on %s, got %+v", ShareIDD13, props)
	}
	if err := sc.Doctor.WaitFinal(ctx, ShareIDD13, props[0].Seq); err != nil {
		t.Fatalf("waiting final: %v", err)
	}

	d1, err := sc.Patient.Source("D1")
	if err != nil {
		t.Fatal(err)
	}
	got = mustValue(t, d1, reldb.Row{reldb.I(188)}, workload.ColDosage)
	if s, _ := got.Str(); s != "two tablets every 8h" {
		t.Fatalf("patient D1 dosage = %q, want updated dosage", s)
	}

	// The patient's address (hidden from every share) must be untouched.
	got = mustValue(t, d1, reldb.Row{reldb.I(188)}, workload.ColAddress)
	if s, _ := got.Str(); s != "Sapporo" {
		t.Fatalf("patient D1 address = %q, want Sapporo (hidden attribute must survive put)", s)
	}
}

// TestPermissionDenied verifies Fig. 3 enforcement: the patient may update
// clinical data but not dosage.
func TestPermissionDenied(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	defer sc.Stop()

	// Allowed: clinical data.
	err = sc.Patient.UpdateSource("D1", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColClinical: reldb.S("CliD1-amended")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := sc.Patient.SyncShares(ctx, "D1")
	if err != nil {
		t.Fatalf("allowed update rejected: %v", err)
	}
	if err := sc.Patient.WaitFinal(ctx, ShareIDD13, props[0].Seq); err != nil {
		t.Fatal(err)
	}
	d3, _ := sc.Doctor.Source("D3")
	got := mustValue(t, d3, reldb.Row{reldb.I(188)}, workload.ColClinical)
	if s, _ := got.Str(); s != "CliD1-amended" {
		t.Fatalf("doctor D3 clinical = %q, want amended", s)
	}

	// Denied: dosage (write permission is doctor-only).
	err = sc.Patient.UpdateSource("D1", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("whatever I want")})
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sc.Patient.SyncShares(ctx, "D1")
	if err == nil {
		t.Fatal("dosage update by patient should be denied")
	}

	// The patient's replica rolled back: D13 must still agree with the
	// doctor's D31.
	d13, _ := sc.Patient.View(ShareIDD13)
	d31, _ := sc.Doctor.View(ShareIDD13)
	if d13.Hash() != d31.Hash() {
		t.Fatalf("replicas diverged after denial")
	}
}

// TestPermissionGrant verifies the Fig. 3 narrative: the doctor (authority
// on D13&D31) grants the patient write access to dosage, after which the
// patient's dosage update succeeds.
func TestPermissionGrant(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	defer sc.Stop()

	err = sc.Doctor.SetPermission(ctx, ShareIDD13, workload.ColDosage,
		[]Address{sc.Doctor.Address(), sc.Patient.Address()})
	if err != nil {
		t.Fatalf("granting permission: %v", err)
	}

	err = sc.Patient.UpdateSource("D1", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("half tablet every 4h")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := sc.Patient.SyncShares(ctx, "D1")
	if err != nil {
		t.Fatalf("granted update still denied: %v", err)
	}
	if err := sc.Patient.WaitFinal(ctx, ShareIDD13, props[0].Seq); err != nil {
		t.Fatal(err)
	}
	d3, _ := sc.Doctor.Source("D3")
	got := mustValue(t, d3, reldb.Row{reldb.I(188)}, workload.ColDosage)
	if s, _ := got.Str(); s != "half tablet every 4h" {
		t.Fatalf("doctor D3 dosage = %q, want patient's update", s)
	}

	// Only the authority may change permissions: the patient cannot.
	err = sc.Patient.SetPermission(ctx, ShareIDD13, workload.ColMedication,
		[]Address{sc.Patient.Address()})
	if err == nil {
		t.Fatal("non-authority permission change should fail")
	}
}

// TestCascade verifies Fig. 5 step 6: a doctor-side medication rename
// affects both D31 (field update, reaching the patient) and D32
// (structural update, reaching the researcher), because the medication
// attribute overlaps both views of D3.
func TestCascade(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	defer sc.Stop()

	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(189)},
			map[string]reldb.Value{workload.ColMedication: reldb.S("Bupropion")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := sc.Doctor.SyncShares(ctx, "D3")
	if err != nil {
		t.Fatalf("doctor sync: %v", err)
	}
	if len(props) != 2 {
		t.Fatalf("medication rename should touch both shares, got %+v", props)
	}
	for _, pr := range props {
		if err := sc.Doctor.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
			t.Fatalf("waiting %s: %v", pr.ShareID, err)
		}
	}

	// Patient sees the rename as a plain field update.
	d1, _ := sc.Patient.Source("D1")
	got := mustValue(t, d1, reldb.Row{reldb.I(189)}, workload.ColMedication)
	if s, _ := got.Str(); s != "Bupropion" {
		t.Fatalf("patient D1 medication = %q, want Bupropion", s)
	}

	// Researcher sees a delete+insert on its medication-keyed D2: the old
	// key is gone, the new key carries the old mechanism and a pending
	// mode of action.
	d2, _ := sc.Researcher.Source("D2")
	if d2.Has(reldb.Row{reldb.S("Wellbutrin")}) {
		t.Fatal("researcher D2 still has the old medication key")
	}
	row, ok := d2.Get(reldb.Row{reldb.S("Bupropion")})
	if !ok {
		t.Fatal("researcher D2 lacks the renamed medication")
	}
	mode := row[d2.Schema().ColumnIndex(workload.ColMode)]
	if s, _ := mode.Str(); s != "MoA-pending" {
		t.Fatalf("mode of action = %q, want MoA-pending default", s)
	}
}

// TestJoinShareWorkflow drives the prescriptions ⋈ formulary share end
// to end: a doctor-side dosage edit must reach the pharmacist's
// prescriptions through JoinLens.PutDelta (the join lens's backward
// delta path on a live network), a pharmacist-side edit must flow the
// other way, and a doctor-side mechanism edit — an edit to a joined-in
// reference column — must be rejected at the pharmacist's put and
// rolled back on the doctor.
func TestJoinShareWorkflow(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewJoinShareScenario(ctx, fastNet(), 24, 7)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	defer sc.Stop()

	// The two independently derived replicas agree from the start (the
	// formulary reproduces the generator's a1 → a5 dependency).
	rxf, err := sc.Pharmacist.View(ShareIDRx)
	if err != nil {
		t.Fatal(err)
	}
	d3f, err := sc.Doctor.View(ShareIDRx)
	if err != nil {
		t.Fatal(err)
	}
	if rxf.Hash() != d3f.Hash() {
		t.Fatal("join and projection replicas disagree at registration")
	}

	// Doctor edits a dosage in D3; the pharmacist's event loop embeds the
	// incoming changeset through the join lens's native PutDelta.
	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("one tablet every 12h")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := sc.Doctor.SyncShares(ctx, "D3")
	if err != nil {
		t.Fatalf("doctor sync: %v", err)
	}
	if len(props) != 1 {
		t.Fatalf("expected one proposal, got %+v", props)
	}
	if err := sc.Doctor.WaitFinal(ctx, ShareIDRx, props[0].Seq); err != nil {
		t.Fatal(err)
	}
	rx, err := sc.Pharmacist.Source("RX")
	if err != nil {
		t.Fatal(err)
	}
	got := mustValue(t, rx, reldb.Row{reldb.I(188)}, workload.ColDosage)
	if s, _ := got.Str(); s != "one tablet every 12h" {
		t.Fatalf("pharmacist RX dosage = %q, want doctor's edit", s)
	}

	// Pharmacist edits a dosage on the shared view directly (UpdateView:
	// delta put into RX, then proposal); the doctor applies it into D3.
	_, err = sc.Pharmacist.UpdateView(ctx, ShareIDRx, func(v *reldb.Table) error {
		return v.Update(reldb.Row{reldb.I(189)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("500 mg at lunch")})
	})
	if err != nil {
		t.Fatalf("pharmacist view edit: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		d3, err := sc.Doctor.Source("D3")
		if err != nil {
			return false
		}
		v, err := d3.Value(reldb.Row{reldb.I(189)}, workload.ColDosage)
		if err != nil {
			return false
		}
		s, _ := v.Str()
		return s == "500 mg at lunch"
	})

	// Doctor edits a mechanism — visible in its D3, but a *reference*
	// column of the pharmacist's join. The contract admits it (the doctor
	// holds the permission); the pharmacist's put rejects it row-by-row,
	// and the rejection rolls the doctor's replica back.
	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColMechanism: reldb.S("MeA-forged")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Doctor.ProposeUpdate(ctx, ShareIDRx); err != nil {
		t.Fatalf("propose: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		for _, h := range sc.Doctor.History() {
			if h.Kind == "rolled-back" && h.ShareID == ShareIDRx {
				return true
			}
		}
		return false
	})
	// The pharmacist's replica still carries the true formulary value.
	rxf, err = sc.Pharmacist.View(ShareIDRx)
	if err != nil {
		t.Fatal(err)
	}
	got = mustValue(t, rxf, reldb.Row{reldb.I(188)}, workload.ColMechanism)
	if s, _ := got.Str(); s == "MeA-forged" {
		t.Fatal("reference-column edit leaked into the pharmacist's replica")
	}
	// And after the rollback both replicas agree again.
	waitFor(t, 30*time.Second, func() bool {
		rxf, err1 := sc.Pharmacist.View(ShareIDRx)
		d3f, err2 := sc.Doctor.View(ShareIDRx)
		return err1 == nil && err2 == nil && rxf.Hash() == d3f.Hash()
	})
}
