package medshare

import (
	"context"
	"fmt"
	"sort"
	"time"

	"medshare/internal/bx"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// ---------------------------------------------------------------------
// E16 — write-side saturation: group commit vs one-update-per-block.
// The paper's protocol serializes each share's updates by sequence
// number, but a hospital-scale peer updates hundreds of *independent*
// shares at once; with interval-paced block production every update
// costs a full block interval of waiting (request, then acks, then
// finality — each a block), so sustained throughput is pinned at a few
// updates per interval regardless of how many shares changed. Group
// commit (node.Config.GroupCommitWindow + core.ProposeUpdates) stages
// all changed shares, submits their request transactions as one batch,
// and kicks the producer, so N updates share one block, one gossip
// broadcast, and one cascade fan-out round. E16 sweeps the batch size
// and measures sustained end-to-end throughput (edit → propose →
// counterparty ack → finality) and the per-update p50 latency; the
// baseline row (batch 1, window off) is the pre-batching discipline.

// E16Result reports one saturation run at a given batch size.
type E16Result struct {
	// BatchSize is how many independent shares are updated per round
	// (sweep config). Batch 1 runs with group commit disabled — the
	// one-update-per-block baseline.
	BatchSize int
	// Rounds is the number of measured update rounds (config echo).
	Rounds int
	// UpdatesPerSec is the sustained finalized-update throughput across
	// all rounds: every update waits out its counterparty ack and the
	// on-chain finality record, not just the request commit.
	UpdatesPerSec float64
	// P50Time is the median per-update latency from the local edit to
	// finality. Updates in one batch commit together, so each inherits
	// its round's makespan.
	P50Time time.Duration
	// MeanBatch is the observed mean request transactions per group
	// commit (peer stats BatchTxs/BatchCommits); 1.0 when batching is
	// off or nothing rode along.
	MeanBatch float64
	// BlocksUsed is how many blocks the measured rounds consumed.
	BlocksUsed int
}

// RunE16Saturation drives `rounds` update rounds over `batch`
// independent shares between a hub and per-share counterparties. With
// groupCommit the network runs demand-driven block production
// (GroupCommitWindow) and the hub proposes all changed shares as one
// batch; without it the producer is interval-paced and each proposal
// waits out block intervals — the paper's one-update-per-block
// discipline.
func RunE16Saturation(ctx context.Context, batch, rounds int, groupCommit bool) (E16Result, error) {
	out := E16Result{BatchSize: batch, Rounds: rounds}
	const interval = 10 * time.Millisecond
	cfg := NetworkConfig{BlockInterval: interval}
	if groupCommit {
		cfg.GroupCommitWindow = 500 * time.Microsecond
	}
	nw, err := NewNetwork(cfg)
	if err != nil {
		return out, err
	}
	defer nw.Stop()

	hub, err := nw.NewPeer("hub", 0)
	if err != nil {
		return out, err
	}
	const records = 8
	hub.DB().PutTable(workload.GenerateManyShares("T", batch, records, 1))

	for i := 0; i < batch; i++ {
		partner, err := nw.NewPeer(fmt.Sprintf("partner-%d", i), 0)
		if err != nil {
			return out, err
		}
		col := workload.ManyShareCol(i)
		id := fmt.Sprintf("S%02d", i)
		src, err := hub.Source("T")
		if err != nil {
			return out, err
		}
		pview, err := bx.Project("T", []string{"k", col}, nil).Get(src)
		if err != nil {
			return out, err
		}
		partner.DB().PutTable(pview)
		err = hub.RegisterShare(ctx, core.RegisterShareArgs{
			ID: id, SourceTable: "T", Lens: bx.Project(id+"h", []string{"k", col}, nil), ViewName: id + "h",
			Peers:     []identity.Address{hub.Address(), partner.Address()},
			WritePerm: map[string][]identity.Address{col: {hub.Address()}},
		})
		if err != nil {
			return out, err
		}
		if err := partner.AttachShare(id, "T", bx.Project(id+"p", []string{"k", col}, nil), id+"p"); err != nil {
			return out, err
		}
	}

	startBlocks := nw.Node(0).Store().Head().Header.Height
	startStats := hub.Stats()
	durations := make([]time.Duration, 0, rounds)
	var total time.Duration
	for r := 0; r < rounds; r++ {
		err := hub.UpdateSource("T", func(tbl *reldb.Table) error {
			set := make(map[string]reldb.Value, batch)
			for i := 0; i < batch; i++ {
				set[workload.ManyShareCol(i)] = reldb.S(fmt.Sprintf("round-%d-%d", r, i))
			}
			return tbl.Update(reldb.Row{reldb.I(int64(r % records))}, set)
		})
		if err != nil {
			return out, err
		}
		start := time.Now()
		props, err := hub.SyncShares(ctx, "T")
		if err != nil {
			return out, err
		}
		if len(props) != batch {
			return out, fmt.Errorf("E16: proposed %d of %d shares", len(props), batch)
		}
		for _, pr := range props {
			if err := hub.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
				return out, err
			}
		}
		d := time.Since(start)
		durations = append(durations, d)
		total += d
	}

	if total > 0 {
		out.UpdatesPerSec = float64(rounds*batch) / total.Seconds()
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	out.P50Time = durations[len(durations)/2]
	out.BlocksUsed = int(nw.Node(0).Store().Head().Header.Height - startBlocks)
	st := hub.Stats()
	commits := st.BatchCommits - startStats.BatchCommits
	txs := st.BatchTxs - startStats.BatchTxs
	if commits > 0 {
		out.MeanBatch = float64(txs) / float64(commits)
	} else {
		out.MeanBatch = 1
	}
	return out, nil
}
