package medshare

import (
	"fmt"
	"time"

	"medshare/internal/core"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// ---------------------------------------------------------------------
// E13 — Merkle row tree: the canonical (history-independent) row tree
// turns the table hash into a collision-resistant Merkle root with
// O(log n) incremental updates, per-row membership proofs, and a
// structural anti-entropy sync that ships only divergent subtrees. This
// experiment pins all three claims across 1k/10k/100k-row tables:
//
//   - the root refresh after a one-row edit is flat in table size
//     (path recompute, not O(n));
//   - proofs build and verify in O(log n);
//   - a d-row divergence syncs with a small fraction of the full-view
//     payload, scattered or contiguous.

// E13Result reports the Merkle-layer costs at one table size.
type E13Result struct {
	Rows int
	// ColdRoot is the first full hash of an unhashed table (O(n), paid
	// once per storage lineage).
	ColdRoot time.Duration
	// RootUpdate is a one-row edit plus the root refresh on an
	// already-hashed table — the steady-state convergence-check cycle
	// (O(log n): path copy + path re-hash).
	RootUpdate time.Duration
	// Prove and Verify are one membership proof round.
	Prove  time.Duration
	Verify time.Duration
	// ProofSteps is the proof's ancestor count (tree depth at the probe).
	ProofSteps int
	// SyncDiverged is d, the number of stale rows in the anti-entropy
	// measurement below.
	SyncDiverged int
	// SyncScatteredBytes / SyncContiguousBytes are the total wire bytes
	// (both directions) for a d-row scattered / contiguous divergence.
	SyncScatteredBytes  int
	SyncContiguousBytes int
	// FullBytes is the full-view payload for contrast.
	FullBytes int
}

// RunE13Merkle measures the Merkle row tree at the given table size.
func RunE13Merkle(rows int, seed int64) (E13Result, error) {
	full := workload.Generate("full", rows, seed)
	full.Hash() // steady state: replicas are hashed

	res := E13Result{Rows: rows, SyncDiverged: 16}
	keys := full.RowsCanonical()

	reps := 64
	if rows >= 100000 {
		reps = 32
	}
	const blocks = 5
	bestOf := func(stage func() error) (time.Duration, error) {
		best := time.Duration(1<<63 - 1)
		for b := 0; b < blocks; b++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				if err := stage(); err != nil {
					return 0, err
				}
			}
			if d := time.Since(start) / time.Duration(reps); d < best {
				best = d
			}
		}
		return best, nil
	}

	// Cold root: the first full hash of a table with no digest cache.
	// The uncached tables are rebuilt *outside* the timed region (the
	// O(n) rebuild is allocation-dominated and jittery; the metric is
	// the hash), and each can only be hashed cold once, so the estimate
	// is the best single measurement across a few prebuilt tables.
	coldReps := 4
	if rows >= 100000 {
		coldReps = 2
	}
	colds := make([]*reldb.Table, coldReps)
	for i := range colds {
		cold := reldb.MustNewTable(full.Schema())
		for _, r := range keys {
			if err := cold.InsertOwned(r); err != nil {
				return res, err
			}
		}
		colds[i] = cold
	}
	res.ColdRoot = time.Duration(1<<63 - 1)
	for _, cold := range colds {
		start := time.Now()
		_ = cold.Hash()
		if d := time.Since(start); d < res.ColdRoot {
			res.ColdRoot = d
		}
	}

	// Steady state: one-row edit + root refresh.
	i := 0
	rootUpdate, err := bestOf(func() error {
		i++
		t := full.Clone()
		if err := t.Update(full.KeyValues(keys[i%len(keys)]),
			map[string]reldb.Value{workload.ColDosage: reldb.S(fmt.Sprintf("e13-%d", i))}); err != nil {
			return err
		}
		_ = t.Hash()
		return nil
	})
	if err != nil {
		return res, err
	}
	res.RootUpdate = rootUpdate

	// Membership proofs.
	root := full.RowsRoot()
	proofRow, proof, err := full.ProveRow(full.KeyValues(keys[len(keys)/2]))
	if err != nil {
		return res, err
	}
	res.ProofSteps = len(proof.Steps)
	i = 0
	prove, err := bestOf(func() error {
		i++
		_, _, err := full.ProveRow(full.KeyValues(keys[i%len(keys)]))
		return err
	})
	if err != nil {
		return res, err
	}
	res.Prove = prove
	verify, err := bestOf(func() error {
		if !reldb.VerifyRowProof(root, proofRow, proof) {
			return fmt.Errorf("e13: proof did not verify")
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Verify = verify

	// Anti-entropy transfer for a d-row divergence, scattered and
	// contiguous, against the full payload.
	d := res.SyncDiverged
	stride := len(keys) / (d + 1)
	if stride == 0 {
		stride = 1
	}
	scattered := full.Clone()
	for j := 0; j < d; j++ {
		if err := scattered.Update(full.KeyValues(keys[(j*stride)%len(keys)]),
			map[string]reldb.Value{workload.ColDosage: reldb.S("stale")}); err != nil {
			return res, err
		}
	}
	if _, stats, err := core.SimulateStructuralSync(full, scattered); err != nil {
		return res, err
	} else {
		res.SyncScatteredBytes = stats.BytesSent + stats.BytesReceived
	}
	contig := full.Clone()
	for j := 0; j < d; j++ {
		if err := contig.Update(full.KeyValues(keys[(len(keys)/2+j)%len(keys)]),
			map[string]reldb.Value{workload.ColDosage: reldb.S("stale")}); err != nil {
			return res, err
		}
	}
	if _, stats, err := core.SimulateStructuralSync(full, contig); err != nil {
		return res, err
	} else {
		res.SyncContiguousBytes = stats.BytesSent + stats.BytesReceived
	}
	raw, err := reldb.MarshalTable(full)
	if err != nil {
		return res, err
	}
	res.FullBytes = len(raw)
	return res, nil
}
