package medshare

// Experiment E19: what a reader costs, light vs full. A full replica
// pays for the whole view — its state and its bootstrap transfer grow
// linearly with the view — even if it only ever reads a handful of
// rows. A light client keeps block headers plus one proven share head
// and pays O(log n) proof bytes per row it actually reads, so both its
// steady-state memory and its per-read wire cost should stay nearly
// flat as the view grows three orders of magnitude. E19 measures both
// sides on the real stack: a Fig. 1 network, the D13&D31 share at
// sweep-size views, and a light client doing proof-verified reads
// through the doctor's serving edge.

import (
	"context"
	"fmt"
	"time"

	"medshare/internal/reldb"
)

// E19Result is one sweep point of the light-vs-full reader cost curve.
type E19Result struct {
	// Rows is the share view size.
	Rows int
	// FullReplicaBytes is the serialized view — both the steady-state
	// memory of a full replica and the bytes a joining replica transfers
	// before its first read (the reldb.MarshalTable payload the replica
	// fetch path actually ships).
	FullReplicaBytes int
	// LightStateBytes is the light client's total retained state after
	// the read set: verified headers, proven share head, row cache.
	LightStateBytes int
	// LightBootstrapBytes is the light client's cold-start wire cost:
	// header sync plus the first proven head and first verified read.
	LightBootstrapBytes int
	// LightWirePerRead is the mean wire bytes of one steady-state
	// uncached verified read (row + membership proof + framing).
	LightWirePerRead int
	// LightColdRead and LightCachedRead are mean per-read latencies for
	// uncached (proof-verified) and cached (provably current) reads.
	LightColdRead   time.Duration
	LightCachedRead time.Duration
}

// RunE19LightReader measures one sweep point: a two-node Fig. 1 network
// with a rows-sized share, one finalized update so the share has a
// payload on-chain, then a light client bootstrapping and reading
// through the doctor.
func RunE19LightReader(ctx context.Context, rows int, seed int64) (E19Result, error) {
	out := E19Result{Rows: rows}
	nw, err := NewNetwork(NetworkConfig{Nodes: 2, BlockInterval: 2 * time.Millisecond, Seed: seed})
	if err != nil {
		return out, err
	}
	defer nw.Stop()
	fig, err := PopulateFig1(ctx, nw, rows, seed)
	if err != nil {
		return out, err
	}
	if err := driveDosageWrite(ctx, fig, rows, 0); err != nil {
		return out, err
	}

	view, err := fig.Doctor.View(fig.ShareD13)
	if err != nil {
		return out, err
	}
	raw, err := reldb.MarshalTable(view)
	if err != nil {
		return out, err
	}
	out.FullReplicaBytes = len(raw)

	c, err := nw.NewLightClient("e19-reader", "Doctor")
	if err != nil {
		return out, err
	}
	c.Subscribe(fig.ShareD13)
	if _, err := c.SyncHeaders(ctx); err != nil {
		return out, err
	}
	// Bootstrap: first read proves the share head against a header and
	// verifies one row — everything a cold light reader pays before its
	// first answer.
	if _, err := c.Read(ctx, fig.ShareD13, reldb.Row{reldb.I(188)}); err != nil {
		return out, fmt.Errorf("E19: bootstrap read: %w", err)
	}
	boot := c.Stats()
	out.LightBootstrapBytes = int(boot.WireBytes)

	// Steady state: uncached reads over distinct keys (the head is
	// already proven, so each read is row + proof only).
	colds := 16
	if colds > rows-1 {
		colds = rows - 1
	}
	start := time.Now()
	for i := 1; i <= colds; i++ {
		if _, err := c.Read(ctx, fig.ShareD13, reldb.Row{reldb.I(int64(188 + i))}); err != nil {
			return out, fmt.Errorf("E19: cold read %d: %w", i, err)
		}
	}
	out.LightColdRead = time.Since(start) / time.Duration(colds)
	after := c.Stats()
	out.LightWirePerRead = int(after.WireBytes-boot.WireBytes) / colds

	// Cached: same keys again, provably current, no wire traffic.
	start = time.Now()
	for i := 1; i <= colds; i++ {
		if _, err := c.Read(ctx, fig.ShareD13, reldb.Row{reldb.I(int64(188 + i))}); err != nil {
			return out, fmt.Errorf("E19: cached read %d: %w", i, err)
		}
	}
	out.LightCachedRead = time.Since(start) / time.Duration(colds)

	final := c.Stats()
	if final.VerifyFailures != 0 {
		return out, fmt.Errorf("E19: %d verification failures", final.VerifyFailures)
	}
	if final.CacheHits < uint64(colds) {
		return out, fmt.Errorf("E19: cached pass hit the cache only %d/%d times", final.CacheHits, colds)
	}
	out.LightStateBytes = c.StateBytes()
	return out, nil
}
