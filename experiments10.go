package medshare

// Experiment E18: cold-start recovery cost of the durable store —
// the flip side of the O(changed nodes) write path. A replica's view
// lives in an append-only content-addressed log; E18 measures what
// reopening that log costs as the view grows (more live nodes to
// verify) and as the commit history deepens (more incremental commits
// to scan past), separating the two phases a restart actually pays:
// Open (scan/index the segments, find the last durable commit) and
// LoadTable (lazily fetch and Merkle-verify the live nodes of the
// recovered root). BytesPerCommit is the write-amplification telemetry:
// with content-addressed deduplication each one-row commit should
// append O(log n) nodes, not the whole table.

import (
	"encoding/hex"
	"fmt"
	"time"

	"medshare/internal/reldb"
	"medshare/internal/store"
	"medshare/internal/workload"
)

// E18Result is one cold-start measurement.
type E18Result struct {
	// Rows is the view size; Depth the number of one-row incremental
	// commits layered on the initial full write.
	Rows  int
	Depth int
	// LogBytes is the log size on disk at crash time; Segments how many
	// segment files it spans; BytesPerCommit the mean append cost of one
	// incremental commit (write amplification).
	LogBytes       int64
	Segments       int
	BytesPerCommit float64
	// OpenTime is the store.Open cost on the kill -9 image (segment
	// scan + index load + torn-tail handling); ScannedBytes what it
	// read and CRC-verified.
	OpenTime     time.Duration
	ScannedBytes int64
	// LoadTime is the LoadTable cost (lazy node fetch + Merkle
	// verification of the recovered view); FetchedBytes what it read.
	LoadTime     time.Duration
	FetchedBytes int64
}

// RunE18Recovery builds a commit history — one full table write plus
// depth one-row updates, over small segments so rotation and the
// segment index engage — then reopens a byte-exact crash image and
// times both recovery phases, verifying the recovered view against the
// live table's Merkle root.
func RunE18Recovery(rows, depth int, seed int64) (E18Result, error) {
	out := E18Result{Rows: rows, Depth: depth}
	fs := store.NewMemFS()
	s, err := store.Open(store.Options{FS: fs, SegmentBytes: 64 << 10})
	if err != nil {
		return out, err
	}
	tb := workload.Generate("view", rows, seed)
	if err := s.Commit(func(b *store.Batch) error { return b.PutTable(tb) }); err != nil {
		return out, err
	}
	baseBytes := s.Stats().TotalBytes
	for i := 0; i < depth; i++ {
		err := tb.Update(reldb.Row{reldb.I(int64(188 + i%rows))}, map[string]reldb.Value{
			workload.ColDosage: reldb.S(fmt.Sprintf("dose-%d", i)),
		})
		if err != nil {
			return out, err
		}
		if err := s.Commit(func(b *store.Batch) error { return b.PutTable(tb) }); err != nil {
			return out, err
		}
	}
	wantHash := tb.Hash()
	st := s.Stats()
	out.LogBytes = st.TotalBytes
	out.Segments = st.Segments
	if depth > 0 {
		out.BytesPerCommit = float64(out.LogBytes-baseBytes) / float64(depth)
	}

	// The kill -9 image: no clean marker, no close — raw bytes only.
	img := fs.Clone()
	t0 := time.Now()
	s2, err := store.Open(store.Options{FS: img, SegmentBytes: 64 << 10})
	if err != nil {
		return out, err
	}
	out.OpenTime = time.Since(t0)
	defer s2.Close()
	out.ScannedBytes = s2.Stats().ScannedBytes

	t1 := time.Now()
	view, err := s2.LoadTable("view")
	if err != nil {
		return out, fmt.Errorf("E18: recovered view: %w", err)
	}
	out.LoadTime = time.Since(t1)
	out.FetchedBytes = s2.Stats().FetchedBytes
	got, want := view.Hash(), wantHash
	if got != want {
		return out, fmt.Errorf("E18: recovered view hash %s != live %s",
			hex.EncodeToString(got[:6]), hex.EncodeToString(want[:6]))
	}
	return out, nil
}
