package medshare

import (
	"context"
	"testing"
	"time"

	"medshare/internal/bx"
	"medshare/internal/consensus"
	"medshare/internal/contract"
	"medshare/internal/contract/sharereg"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/node"
	"medshare/internal/p2p"
	"medshare/internal/reldb"
)

// TestTCPEndToEnd runs the full protocol across two real TCP processes'
// worth of stack in one test binary: two nodes gossiping blocks over TCP
// and two peers fetching share payloads over the same transports — the
// exact wiring of cmd/medshared.
func TestTCPEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	docID := identity.FromSeed("Doctor", "tcp-demo-1")
	patID := identity.FromSeed("Patient", "tcp-demo-2")
	authorities := []identity.Address{docID.Address(), patID.Address()}

	docT, err := p2p.NewTCPTransport("Doctor", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer docT.Close()
	patT, err := p2p.NewTCPTransport("Patient", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer patT.Close()
	docT.AddPeer("Patient", patT.Addr())
	patT.AddPeer("Doctor", docT.Addr())

	dir := core.NewDirectory()
	dir.Set(docID.Address(), "Doctor")
	dir.Set(patID.Address(), "Patient")

	mkNode := func(id *identity.Identity, tr p2p.Transport) *node.Node {
		n, err := node.New(node.Config{
			NetworkName:   "tcp-e2e",
			Identity:      id,
			Engine:        consensus.NewPoA(true, authorities...),
			Registry:      contract.NewRegistry(sharereg.New()),
			BlockInterval: 5 * time.Millisecond,
			Transport:     tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Start(ctx)
		t.Cleanup(n.Stop)
		return n
	}
	docNode := mkNode(docID, docT)
	patNode := mkNode(patID, patT)

	schema := reldb.Schema{
		Name: "records",
		Columns: []reldb.Column{
			{Name: "pid", Type: reldb.KindInt},
			{Name: "dosage", Type: reldb.KindString},
			{Name: "private", Type: reldb.KindString},
		},
		Key: []string{"pid"},
	}
	mkPeer := func(id *identity.Identity, n *node.Node, tr p2p.Transport, private string) *core.Peer {
		db := reldb.NewDatabase(id.Name)
		s := schema
		if private == "" {
			s.Columns = schema.Columns[:2]
		}
		tbl := reldb.MustNewTable(s)
		if private != "" {
			tbl.MustInsert(reldb.Row{reldb.I(1), reldb.S("low"), reldb.S(private)})
		} else {
			tbl.MustInsert(reldb.Row{reldb.I(1), reldb.S("low")})
		}
		db.PutTable(tbl)
		p, err := core.NewPeer(core.Config{
			Identity: id, DB: db, Node: n, Transport: tr, Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		t.Cleanup(p.Stop)
		return p
	}
	doctor := mkPeer(docID, docNode, docT, "doctor-notes")
	patient := mkPeer(patID, patNode, patT, "")

	cols := []string{"pid", "dosage"}
	err = doctor.RegisterShare(ctx, core.RegisterShareArgs{
		ID: "S", SourceTable: "records",
		Lens: bx.Project("docV", cols, nil), ViewName: "docV",
		Peers: authorities,
		WritePerm: map[string][]identity.Address{
			"dosage": {docID.Address()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := patient.WaitForShare(ctx, "S"); err != nil {
		t.Fatal(err)
	}
	if err := patient.AttachShare("S", "records", bx.Project("patV", cols, nil), "patV"); err != nil {
		t.Fatal(err)
	}

	// Doctor updates; the payload crosses real TCP.
	err = doctor.UpdateSource("records", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"dosage": reldb.S("high")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := doctor.SyncShares(ctx, "records")
	if err != nil {
		t.Fatal(err)
	}
	if err := doctor.WaitFinal(ctx, "S", props[0].Seq); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 30*time.Second, func() bool {
		got, err := patient.Source("records")
		if err != nil {
			return false
		}
		v, err := got.Value(reldb.Row{reldb.I(1)}, "dosage")
		if err != nil {
			return false
		}
		s, _ := v.Str()
		return s == "high"
	})

	// Both nodes agree on state.
	waitFor(t, 30*time.Second, func() bool {
		return docNode.State().Root() == patNode.State().Root() &&
			docNode.Store().Height() == patNode.Store().Height()
	})
}
