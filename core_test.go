package medshare

import (
	"errors"
	"strings"
	"testing"
	"time"

	"medshare/internal/bx"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// TestUpdateViewEntryLevel exercises the Fig. 4 entry-level update done
// directly on the shared table rather than on the source.
func TestUpdateViewEntryLevel(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	res, err := sc.Doctor.UpdateView(ctx, ShareIDD13, func(v *reldb.Table) error {
		return v.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("entry-level dosage")})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The doctor's own source D3 was updated through put before the
	// proposal went out.
	d3, _ := sc.Doctor.Source("D3")
	got := mustValue(t, d3, reldb.Row{reldb.I(188)}, workload.ColDosage)
	if s, _ := got.Str(); s != "entry-level dosage" {
		t.Fatalf("doctor D3 dosage = %q", s)
	}
	if err := sc.Doctor.WaitFinal(ctx, ShareIDD13, res.Seq); err != nil {
		t.Fatal(err)
	}
	d1, _ := sc.Patient.Source("D1")
	got = mustValue(t, d1, reldb.Row{reldb.I(188)}, workload.ColDosage)
	if s, _ := got.Str(); s != "entry-level dosage" {
		t.Fatalf("patient D1 dosage = %q", s)
	}
}

// TestEntryCreateAndDelete exercises Fig. 4 Create and Delete at entry
// level: the doctor admits a new patient row and later deletes it, and
// both structural changes reach the patient's D1 (whose lens applies
// structural edits with an address default).
func TestEntryCreateAndDelete(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Insert(reldb.Row{
			reldb.I(190), reldb.S("Ibuprofen"), reldb.S("CliD3"),
			reldb.S("one tablet daily"), reldb.S("MeA1"),
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := sc.Doctor.SyncShares(ctx, "D3")
	if err != nil {
		t.Fatalf("create sync: %v", err)
	}
	for _, pr := range props {
		if err := sc.Doctor.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
			t.Fatal(err)
		}
	}
	d1, _ := sc.Patient.Source("D1")
	row, ok := d1.Get(reldb.Row{reldb.I(190)})
	if !ok {
		t.Fatal("new patient row missing from D1")
	}
	if s, _ := row[d1.Schema().ColumnIndex(workload.ColAddress)].Str(); s != "unknown" {
		t.Fatalf("hidden address default = %q", s)
	}

	// Delete the entry again.
	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Delete(reldb.Row{reldb.I(190)})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err = sc.Doctor.SyncShares(ctx, "D3")
	if err != nil {
		t.Fatalf("delete sync: %v", err)
	}
	for _, pr := range props {
		if err := sc.Doctor.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
			t.Fatal(err)
		}
	}
	d1, _ = sc.Patient.Source("D1")
	if d1.Has(reldb.Row{reldb.I(190)}) {
		t.Fatal("deleted patient row still in D1")
	}
}

// TestRejectAndRollback: a view edit that cannot be translated into the
// counterparty's source must be rejected on-chain and rolled back on the
// proposer, leaving the share usable.
func TestRejectAndRollback(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	// The researcher invents a brand-new medication in D2. Its D23 view
	// gains a row; the doctor's D32 lens forbids inserts (a medication
	// with no patient has no D3 representation), so the doctor rejects.
	err = sc.Researcher.UpdateSource("D2", func(tbl *reldb.Table) error {
		return tbl.Insert(reldb.Row{reldb.S("Novamycin"), reldb.S("MeA-new"), reldb.S("MoA-new")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := sc.Researcher.SyncShares(ctx, "D2")
	if err != nil {
		t.Fatalf("researcher sync: %v", err)
	}
	if len(props) != 1 {
		t.Fatalf("props = %+v", props)
	}

	// Wait until the doctor's rejection rolls the researcher's replica
	// back (on-chain pending cleared, seq unchanged).
	waitFor(t, 30*time.Second, func() bool {
		meta, err := sc.Researcher.Meta(ShareIDD23)
		if err != nil {
			return false
		}
		return meta.Pending == nil && meta.Seq == 0
	})
	// The replicas agree again.
	waitFor(t, 30*time.Second, func() bool {
		d23, err1 := sc.Researcher.View(ShareIDD23)
		d32, err2 := sc.Doctor.View(ShareIDD23)
		return err1 == nil && err2 == nil && d23.Hash() == d32.Hash()
	})
	// The researcher's local D2 keeps its edit (surfaced, not destroyed).
	d2, _ := sc.Researcher.Source("D2")
	if !d2.Has(reldb.Row{reldb.S("Novamycin")}) {
		t.Fatal("local source edit must survive a rejection")
	}
	// The rollback is visible in the researcher's history.
	found := false
	for _, h := range sc.Researcher.History() {
		if h.Kind == "rolled-back" && h.ShareID == ShareIDD23 {
			found = true
		}
	}
	if !found {
		t.Fatal("rolled-back history entry missing")
	}
	// The share remains usable afterwards.
	err = sc.Researcher.UpdateSource("D2", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.S("Ibuprofen")},
			map[string]reldb.Value{workload.ColMechanism: reldb.S("MeA1-after-reject")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err = sc.Researcher.SyncShares(ctx, "D2")
	if err != nil {
		t.Fatalf("share unusable after rejection: %v", err)
	}
	// The proposal includes the still-unsynced Novamycin row as well; it
	// will be rejected again. Accept either outcome for the final wait:
	// what matters is the mechanism edit was proposable at all.
	_ = props
}

// TestRemoveShareLifecycle: the owner removes a share (Fig. 4 table-level
// delete); both sides drop their bindings.
func TestRemoveShareLifecycle(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	// Non-owner cannot remove.
	if err := sc.Patient.RemoveShare(ctx, ShareIDD13); err == nil {
		t.Fatal("non-owner removal should fail")
	}
	if err := sc.Doctor.RemoveShare(ctx, ShareIDD13); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Doctor.Meta(ShareIDD13); err == nil {
		t.Fatal("metadata still on chain")
	}
	// The patient's binding disappears once the removal event arrives.
	waitFor(t, 30*time.Second, func() bool {
		for _, id := range sc.Patient.Shares() {
			if id == ShareIDD13 {
				return false
			}
		}
		return true
	})
	// The other share is unaffected.
	if _, err := sc.Doctor.Meta(ShareIDD23); err != nil {
		t.Fatal("unrelated share was removed")
	}
}

// TestMultiNodeScenario runs the Fig. 5 flow with three blockchain nodes
// under strict round-robin PoA, each stakeholder on a different node.
func TestMultiNodeScenario(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, NetworkConfig{
		Nodes:         3,
		BlockInterval: 3 * time.Millisecond,
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	err = sc.Researcher.UpdateSource("D2", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.S("Ibuprofen")},
			map[string]reldb.Value{workload.ColMechanism: reldb.S("MeA1-multinode")})
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := sc.Researcher.SyncShares(ctx, "D2")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Researcher.WaitFinal(ctx, ShareIDD23, props[0].Seq); err != nil {
		t.Fatal(err)
	}
	// The doctor (attached to a different node) applied the update.
	waitFor(t, 30*time.Second, func() bool {
		d3, err := sc.Doctor.Source("D3")
		if err != nil {
			return false
		}
		v, err := d3.Value(reldb.Row{reldb.I(188)}, workload.ColMechanism)
		if err != nil {
			return false
		}
		s, _ := v.Str()
		return s == "MeA1-multinode"
	})
}

// TestFetchAuthorization: only sharing peers can fetch a share's payload
// over the data channel.
func TestFetchAuthorization(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	// The patient is not a peer of D23&D32; a fetch must be refused even
	// though the patient is a legitimate system participant.
	outsider, err := sc.Network.NewPeer("Outsider", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = outsider.Fetch(ctx, sc.Researcher.Address(), ShareIDD23, 0)
	if err == nil {
		t.Fatal("non-peer fetch succeeded")
	}
	if !errors.Is(err, ErrNotAuthorized) && !strings.Contains(err.Error(), "non-peer") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A legitimate peer fetch works.
	table, _, err := sc.Doctor.Fetch(ctx, sc.Researcher.Address(), ShareIDD23, 0)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() == 0 {
		t.Fatal("fetched empty table")
	}
}

// TestResyncAfterMissedEvents: a peer that missed all notifications
// catches up from contract state and the data channel.
func TestResyncAfterMissedEvents(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	// Silence the patient's event loop to simulate missed notifications.
	sc.Patient.Stop()

	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("resync dosage")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Doctor.SyncShares(ctx, "D3"); err != nil {
		t.Fatal(err)
	}
	// Patient missed the event. Resync reconciles: fetch, put, ack.
	if err := sc.Patient.Resync(ctx); err != nil {
		t.Fatal(err)
	}
	d1, _ := sc.Patient.Source("D1")
	got := mustValue(t, d1, reldb.Row{reldb.I(188)}, workload.ColDosage)
	if s, _ := got.Str(); s != "resync dosage" {
		t.Fatalf("dosage after resync = %q", s)
	}
	// The ack finalized the share.
	meta, err := sc.Patient.Meta(ShareIDD13)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Seq != 1 || meta.Pending != nil {
		t.Fatalf("meta = %+v", meta)
	}
}

// TestAutoResyncRecovers: with the periodic resync loop enabled, a peer
// that misses every notification still converges without manual calls.
func TestAutoResyncRecovers(t *testing.T) {
	ctx := testCtx(t)
	cfg := fastNet()
	cfg.PeerResyncInterval = 10 * time.Millisecond
	sc, err := NewFig1Scenario(ctx, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	// Drop the patient's event subscription by flooding... simplest
	// deterministic simulation: stop and restart the peer's loops, losing
	// whatever happened in between.
	sc.Patient.Stop()
	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("auto-resynced")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Doctor.SyncShares(ctx, "D3"); err != nil {
		t.Fatal(err)
	}
	// The patient missed the event entirely. Restarting it brings only
	// the periodic resync loop; no event will ever arrive for seq 1.
	sc.Patient.Restart()
	waitFor(t, 30*time.Second, func() bool {
		d1, err := sc.Patient.Source("D1")
		if err != nil {
			return false
		}
		v, err := d1.Value(reldb.Row{reldb.I(188)}, workload.ColDosage)
		if err != nil {
			return false
		}
		s, _ := v.Str()
		return s == "auto-resynced"
	})
	// And the share finalized (the resync acked).
	if err := sc.Doctor.WaitFinal(ctx, ShareIDD13, 1); err != nil {
		t.Fatal(err)
	}
}

// TestLensSpecOnChainRebuild: any peer can rebuild the registered lens
// from on-chain metadata and derive the same view.
func TestLensSpecOnChainRebuild(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	meta, err := sc.Doctor.Meta(ShareIDD23)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.LensSpec) == 0 {
		t.Fatal("lens spec not registered on-chain")
	}
	spec, err := bx.ParseSpec(meta.LensSpec)
	if err != nil {
		t.Fatal(err)
	}
	lens, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	d3, _ := sc.Doctor.Source("D3")
	rebuilt, err := lens.Get(d3)
	if err != nil {
		t.Fatal(err)
	}
	d32, _ := sc.Doctor.View(ShareIDD23)
	// Content comparison: the stored replica carries the share's priority
	// seed, the ad-hoc rebuild does not, so their Merkle roots differ.
	if !rebuilt.Equal(d32) {
		t.Fatal("rebuilt lens derives a different view")
	}
}

// TestConcurrentUpdateGate: while an update is pending, a second update
// on the same share is denied (the paper's serialization rule), and
// succeeds after finalization.
func TestConcurrentUpdateGate(t *testing.T) {
	ctx := testCtx(t)
	sc, err := NewFig1Scenario(ctx, fastNet(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	// Stop the patient so the doctor's update stays pending.
	sc.Patient.Stop()

	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("first")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Doctor.SyncShares(ctx, "D3"); err != nil {
		t.Fatal(err)
	}

	// Second doctor update on the same share while pending: denied.
	err = sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
		return tbl.Update(reldb.Row{reldb.I(188)},
			map[string]reldb.Value{workload.ColDosage: reldb.S("second")})
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sc.Doctor.ProposeUpdate(ctx, ShareIDD13)
	if err == nil {
		t.Fatal("second update admitted while first is pending")
	}
	if !errors.Is(err, ErrTxFailed) {
		t.Fatalf("want ErrTxFailed, got %v", err)
	}

	// The patient resyncs (fetches + acks), finalizing the first update.
	if err := sc.Patient.Resync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sc.Doctor.WaitFinal(ctx, ShareIDD13, 1); err != nil {
		t.Fatal(err)
	}
	// Now the second update goes through.
	if _, err := sc.Doctor.ProposeUpdate(ctx, ShareIDD13); err != nil {
		t.Fatalf("update after finalization denied: %v", err)
	}
}
