// Command clinicnetwork runs a larger deployment than the paper's
// three-party example: three blockchain nodes under strict round-robin
// proof of authority, two clinics, a lab, and a registry of patients,
// with several overlapping fine-grained shares and a burst of concurrent
// updates. It demonstrates that the architecture generalizes beyond the
// Patient/Doctor/Researcher triangle of Fig. 1.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"medshare"
)

const nPatients = 40

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	nw, err := medshare.NewNetwork(medshare.NetworkConfig{
		Nodes:         3,
		BlockInterval: 5 * time.Millisecond,
		Latency:       200 * time.Microsecond,
		Jitter:        100 * time.Microsecond,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Stop()
	fmt.Printf("network: 3 PoA nodes (strict round-robin), simulated latency 200µs±100µs\n")

	// Stakeholders spread across the nodes.
	clinicA, err := nw.NewPeer("ClinicA", 0)
	must(err)
	clinicB, err := nw.NewPeer("ClinicB", 1)
	must(err)
	lab, err := nw.NewPeer("Lab", 2)
	must(err)

	// Clinic A owns the master records for its patients.
	full := medshare.GenerateRecords("master", nPatients, 7)
	clinicA.DB().PutTable(full)

	// Clinic B co-treats the same patients and keeps the treatment slice.
	treatCols := []string{medshare.ColPatientID, medshare.ColMedication, medshare.ColClinical, medshare.ColDosage}
	bTable, err := full.Project("treatment", treatCols, nil)
	must(err)
	clinicB.DB().PutTable(bTable)

	// The lab keeps pharmacology only.
	labCols := []string{medshare.ColMedication, medshare.ColMechanism}
	labTable, err := full.Project("pharma", labCols, []string{medshare.ColMedication})
	must(err)
	lab.DB().PutTable(labTable)

	// Share 1: Clinic A <-> Clinic B on the treatment slice; both may
	// update dosage, only A may change medication.
	must(clinicA.RegisterShare(ctx, medshare.RegisterShareArgs{
		ID:          "treatment:A-B",
		SourceTable: "master",
		Lens:        medshare.ProjectLens("treatA", treatCols, nil),
		ViewName:    "treatA",
		Peers:       []medshare.Address{clinicA.Address(), clinicB.Address()},
		WritePerm: map[string][]medshare.Address{
			medshare.ColDosage:     {clinicA.Address(), clinicB.Address()},
			medshare.ColClinical:   {clinicA.Address(), clinicB.Address()},
			medshare.ColMedication: {clinicA.Address()},
		},
	}))
	if _, err := clinicB.WaitForShare(ctx, "treatment:A-B"); err != nil {
		log.Fatal(err)
	}
	must(clinicB.AttachShare("treatment:A-B", "treatment",
		medshare.ProjectLens("treatB", treatCols, nil), "treatB"))

	// Share 2: Clinic A <-> Lab on pharmacology; the lab owns mechanism.
	must(clinicA.RegisterShare(ctx, medshare.RegisterShareArgs{
		ID:          "pharma:A-Lab",
		SourceTable: "master",
		Lens:        medshare.ProjectLens("pharmaA", labCols, []string{medshare.ColMedication}),
		ViewName:    "pharmaA",
		Peers:       []medshare.Address{clinicA.Address(), lab.Address()},
		WritePerm: map[string][]medshare.Address{
			medshare.ColMechanism: {lab.Address()},
		},
	}))
	if _, err := lab.WaitForShare(ctx, "pharma:A-Lab"); err != nil {
		log.Fatal(err)
	}
	must(lab.AttachShare("pharma:A-Lab", "pharma",
		medshare.ProjectLens("pharmaLab", labCols, []string{medshare.ColMedication}), "pharmaLab"))

	fmt.Println("shares registered: treatment:A-B, pharma:A-Lab")

	// Concurrent update burst: Clinic B adjusts dosages while the lab
	// revises mechanisms. The two shares are independent, so the bursts
	// interleave freely; within each share the contract serializes.
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			pid := int64(188 + i)
			must(clinicB.UpdateSource("treatment", func(t *medshare.Table) error {
				return t.Update(medshare.Row{medshare.I(pid)},
					map[string]medshare.Value{medshare.ColDosage: medshare.S(fmt.Sprintf("adjusted-%d", i))})
			}))
			props, err := clinicB.SyncShares(ctx, "treatment")
			must(err)
			for _, pr := range props {
				must(clinicB.WaitFinal(ctx, pr.ShareID, pr.Seq))
			}
		}
	}()
	go func() {
		defer wg.Done()
		pharma, err := lab.Source("pharma")
		must(err)
		meds := pharma.RowsCanonical()
		for i := 0; i < 5 && i < len(meds); i++ {
			med := meds[i][0]
			must(lab.UpdateSource("pharma", func(t *medshare.Table) error {
				return t.Update(medshare.Row{med},
					map[string]medshare.Value{medshare.ColMechanism: medshare.S(fmt.Sprintf("MeA-rev-%d", i))})
			}))
			props, err := lab.SyncShares(ctx, "pharma")
			must(err)
			for _, pr := range props {
				must(lab.WaitFinal(ctx, pr.ShareID, pr.Seq))
			}
		}
	}()
	wg.Wait()
	fmt.Printf("10 finalized updates across 2 shares in %v\n", time.Since(start).Round(time.Millisecond))

	// Convergence check: every replica agrees and Clinic A's master
	// absorbed both streams.
	tA, _ := clinicA.View("treatment:A-B")
	tB, _ := clinicB.View("treatment:A-B")
	pA, _ := clinicA.View("pharma:A-Lab")
	pL, _ := lab.View("pharma:A-Lab")
	fmt.Printf("replica agreement: treatment %v, pharma %v\n",
		tA.Hash() == tB.Hash(), pA.Hash() == pL.Hash())

	master, _ := clinicA.Source("master")
	row, _ := master.Get(medshare.Row{medshare.I(188)})
	fmt.Printf("clinic A master record 188 now: dosage=%v\n", row[4])

	// Every node agrees on the ledger. The last ack commits on one node
	// first and reaches the others a gossip hop later, so give
	// propagation a bounded moment to settle before sampling — a genuine
	// divergence still prints false after the deadline.
	rootsEqual := func() bool {
		return nw.Node(0).State().Root() == nw.Node(1).State().Root() &&
			nw.Node(1).State().Root() == nw.Node(2).State().Root()
	}
	for deadline := time.Now().Add(2 * time.Second); !rootsEqual() && time.Now().Before(deadline); {
		time.Sleep(5 * time.Millisecond)
	}
	h0 := nw.Node(0).Store().Height()
	fmt.Printf("chain height %d on node 0; state roots equal across nodes: %v\n", h0, rootsEqual())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
