// Command quickstart is the smallest complete medshare program: two
// stakeholders, one fine-grained share, one permission-checked update
// propagated through the blockchain and embedded with a bidirectional
// transformation.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"medshare"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// 1. Boot an in-process network: one proof-of-authority blockchain
	// node plus the simulated peer-to-peer data channel.
	nw, err := medshare.NewNetwork(medshare.NetworkConfig{
		BlockInterval: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Stop()

	// 2. Two stakeholders, each with a private local database.
	doctor, err := nw.NewPeer("Doctor", 0)
	if err != nil {
		log.Fatal(err)
	}
	patient, err := nw.NewPeer("Patient", 0)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Both hold (pre-agreed, consistent) medical records locally. The
	// doctor's table has a private column the patient never sees.
	schema := medshare.Schema{
		Name: "records",
		Columns: []medshare.Column{
			{Name: "patient_id", Type: medshare.KindInt},
			{Name: "dosage", Type: medshare.KindString},
			{Name: "treatment_notes", Type: medshare.KindString}, // doctor-private
		},
		Key: []string{"patient_id"},
	}
	docTable, err := medshare.NewTable(schema)
	if err != nil {
		log.Fatal(err)
	}
	_ = docTable.Insert(medshare.Row{medshare.I(188), medshare.S("one tablet every 4h"), medshare.S("responding well")})
	doctor.DB().PutTable(docTable)

	patSchema := schema
	patSchema.Columns = schema.Columns[:2] // patient holds id + dosage only
	patTable, err := medshare.NewTable(patSchema)
	if err != nil {
		log.Fatal(err)
	}
	_ = patTable.Insert(medshare.Row{medshare.I(188), medshare.S("one tablet every 4h")})
	patient.DB().PutTable(patTable)

	// 4. The doctor registers the share on-chain: the view is the
	// projection onto (patient_id, dosage); only the doctor may write
	// dosage (Fig. 3-style attribute-level permission).
	shareCols := []string{"patient_id", "dosage"}
	err = doctor.RegisterShare(ctx, medshare.RegisterShareArgs{
		ID:          "dosage-share",
		SourceTable: "records",
		Lens:        medshare.ProjectLens("doctor-view", shareCols, nil),
		ViewName:    "doctor-view",
		Peers:       []medshare.Address{doctor.Address(), patient.Address()},
		WritePerm: map[string][]medshare.Address{
			"dosage": {doctor.Address()},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. The patient binds its side of the share with its own lens.
	err = patient.AttachShare("dosage-share", "records",
		medshare.ProjectLens("patient-view", shareCols, nil), "patient-view")
	if err != nil {
		log.Fatal(err)
	}

	// 6. The doctor changes the dosage in its full records and syncs.
	err = doctor.UpdateSource("records", func(t *medshare.Table) error {
		return t.Update(medshare.Row{medshare.I(188)},
			map[string]medshare.Value{"dosage": medshare.S("two tablets every 8h")})
	})
	if err != nil {
		log.Fatal(err)
	}
	props, err := doctor.SyncShares(ctx, "records")
	if err != nil {
		log.Fatal(err)
	}
	if err := doctor.WaitFinal(ctx, "dosage-share", props[0].Seq); err != nil {
		log.Fatal(err)
	}

	// 7. The patient's local database now carries the new dosage —
	// synchronized through the chain-gated protocol and the lens put.
	got, err := patient.Source("records")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("patient's local records after the doctor's update:")
	fmt.Print(medshare.FormatTable(got))

	// 8. The reverse direction is permission-checked: the patient cannot
	// change the dosage.
	_ = patient.UpdateSource("records", func(t *medshare.Table) error {
		return t.Update(medshare.Row{medshare.I(188)},
			map[string]medshare.Value{"dosage": medshare.S("whatever")})
	})
	if _, err := patient.SyncShares(ctx, "records"); err != nil {
		fmt.Printf("\npatient's dosage update was rejected, as configured:\n  %v\n", err)
	}
}
