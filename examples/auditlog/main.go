// Command auditlog demonstrates the ledger properties of Section III-B:
// every update on shared medical data — including denied attempts — is
// permanently recorded, any party can reconstruct the history by
// replaying the chain, and tampering is detected.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"medshare"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	sc, err := medshare.NewFig1Scenario(ctx, medshare.NetworkConfig{
		BlockInterval: 5 * time.Millisecond,
	}, 10, 99)
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Stop()

	// Generate some history: two legitimate updates, one denied attempt,
	// one permission change, then a now-legitimate retry.
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	sync := func(p interface {
		SyncShares(context.Context, string) ([]medshare.ProposalResult, error)
		WaitFinal(context.Context, string, uint64) error
	}, src string) error {
		props, err := p.SyncShares(ctx, src)
		if err != nil {
			return err
		}
		for _, pr := range props {
			if err := p.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
				return err
			}
		}
		return nil
	}

	must(sc.Doctor.UpdateSource("D3", func(t *medshare.Table) error {
		return t.Update(medshare.Row{medshare.I(188)},
			map[string]medshare.Value{medshare.ColDosage: medshare.S("updated once")})
	}))
	must(sync(sc.Doctor, "D3"))

	must(sc.Patient.UpdateSource("D1", func(t *medshare.Table) error {
		return t.Update(medshare.Row{medshare.I(188)},
			map[string]medshare.Value{medshare.ColClinical: medshare.S("patient amendment")})
	}))
	must(sync(sc.Patient, "D1"))

	// Denied: the patient tries to change the dosage.
	must(sc.Patient.UpdateSource("D1", func(t *medshare.Table) error {
		return t.Update(medshare.Row{medshare.I(188)},
			map[string]medshare.Value{medshare.ColDosage: medshare.S("self-medication")})
	}))
	if _, err := sc.Patient.SyncShares(ctx, "D1"); err != nil {
		fmt.Printf("denied as expected: %v\n\n", err)
	}
	// Revert the local attempt so later syncs stay clean.
	must(sc.Patient.UpdateSource("D1", func(t *medshare.Table) error {
		return t.Update(medshare.Row{medshare.I(188)},
			map[string]medshare.Value{medshare.ColDosage: medshare.S("updated once")})
	}))

	// The doctor grants the permission (the Fig. 3 narrative), and the
	// patient retries successfully.
	must(sc.Doctor.SetPermission(ctx, medshare.ShareIDD13, medshare.ColDosage,
		[]medshare.Address{sc.Doctor.Address(), sc.Patient.Address()}))
	must(sc.Patient.UpdateSource("D1", func(t *medshare.Table) error {
		return t.Update(medshare.Row{medshare.I(188)},
			map[string]medshare.Value{medshare.ColDosage: medshare.S("patient-adjusted")})
	}))
	must(sync(sc.Patient, "D1"))

	// Reconstruct the history from the chain alone.
	auditor := medshare.NewAuditor(sc.Network.Node(0))
	if err := auditor.VerifyIntegrity(); err != nil {
		log.Fatalf("integrity: %v", err)
	}
	fmt.Println("chain integrity: OK (linkage, signatures, conflict rule, state roots)")

	recs, err := auditor.History(medshare.ShareIDD13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull history of share %s (%d transactions):\n", medshare.ShareIDD13, len(recs))
	for _, r := range recs {
		status := "ok"
		if !r.OK {
			status = "DENIED: " + truncate(r.Err, 40)
		}
		who := shortName(sc, r.From)
		fmt.Printf("  block %3d  %-15s by %-10s seq %d cols %-28v %s\n",
			r.Height, r.Fn, who, r.Seq, r.Cols, status)
	}

	tl, err := auditor.UpdateTimeline(medshare.ShareIDD13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinalized update timeline (what a reviewer checks):\n")
	for _, r := range tl {
		fmt.Printf("  seq %d: %s changed %v at %s (payload %s…)\n",
			r.Seq, shortName(sc, r.Author), r.Cols, r.Time.Format(time.RFC3339), r.PayloadHash[:12])
	}

	// Tamper with the in-memory chain and show detection.
	blocks := sc.Network.Node(0).Store().MainChain()
	for _, b := range blocks {
		if len(b.Txs) > 0 {
			b.Txs[0].Args = [][]byte{[]byte(`{"forged":true}`)}
			break
		}
	}
	if err := auditor.VerifyIntegrity(); err != nil {
		fmt.Printf("\ntamper detection: %v\n", err)
	} else {
		log.Fatal("tampering went undetected")
	}
}

func shortName(sc *medshare.Fig1Scenario, a medshare.Address) string {
	switch a {
	case sc.Doctor.Address():
		return "Doctor"
	case sc.Patient.Address():
		return "Patient"
	case sc.Researcher.Address():
		return "Researcher"
	default:
		return a.Short()
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
