// Command fig5workflow replays the paper's Section III-E case study
// step by step on real infrastructure: the researcher revises a mechanism
// of action, the update flows D2 → D23 → (blockchain) → D32 → D3, the
// doctor checks his other share for overlap (step 6), then separately
// adjusts a dosage that flows D3 → D31 → (blockchain) → D13 → D1.
//
// Run it and read the narration; every numbered step matches Fig. 5.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"medshare"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fmt.Println("=== Fig. 5 workflow on the Fig. 1 data ===")
	sc, err := medshare.NewFig1Scenario(ctx, medshare.NetworkConfig{
		BlockInterval: 5 * time.Millisecond,
	}, 0 /* exact Fig. 1 rows */, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Stop()

	show := func(title string, t *medshare.Table) {
		fmt.Printf("\n--- %s ---\n%s", title, medshare.FormatTable(t))
	}
	d2, _ := sc.Researcher.Source("D2")
	show("Researcher D2 (before)", d2)
	d3, _ := sc.Doctor.Source("D3")
	show("Doctor D3 (before)", d3)

	// Step 1: the researcher updates MeA1 locally and regenerates D23
	// with BX23-get.
	fmt.Println("\n[step 1] Researcher updates the mechanism of Ibuprofen in D2 and runs BX23-get")
	err = sc.Researcher.UpdateSource("D2", func(t *medshare.Table) error {
		return t.Update(medshare.Row{medshare.S("Ibuprofen")},
			map[string]medshare.Value{medshare.ColMechanism: medshare.S("MeA1-revised")})
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: request the update on the smart contract.
	fmt.Println("[step 2] Researcher sends the update request to the sharereg contract")
	props, err := sc.Researcher.SyncShares(ctx, "D2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("         admitted as %s seq %d (changed cols %v)\n",
		props[0].ShareID, props[0].Seq, props[0].Cols)

	// Steps 3-5 run automatically in the doctor's event loop: contract
	// notification, direct data fetch from the researcher, BX32-put.
	fmt.Println("[steps 3-5] Doctor is notified, fetches D32 from the researcher, and runs BX32-put")
	if err := sc.Researcher.WaitFinal(ctx, props[0].ShareID, props[0].Seq); err != nil {
		log.Fatal(err)
	}
	d3, _ = sc.Doctor.Source("D3")
	show("Doctor D3 (after steps 1-5)", d3)

	// Step 6: overlap check. The mechanism column is not visible through
	// D31, so nothing cascades automatically — exactly the paper's case,
	// where steps 7-11 happen only because the doctor *chooses* to edit
	// the dosage.
	fmt.Println("\n[step 6] Doctor checks D31 for overlap with the incoming change: none (mechanism is not shared with the patient)")

	// Steps 7-8: the doctor modifies the dosage and requests the update.
	fmt.Println("[steps 7-8] Doctor updates the dosage for patient 188 and requests the update on-chain")
	err = sc.Doctor.UpdateSource("D3", func(t *medshare.Table) error {
		return t.Update(medshare.Row{medshare.I(188)},
			map[string]medshare.Value{medshare.ColDosage: medshare.S("two tablets every 8h")})
	})
	if err != nil {
		log.Fatal(err)
	}
	props, err = sc.Doctor.SyncShares(ctx, "D3")
	if err != nil {
		log.Fatal(err)
	}

	// Steps 9-11: the patient is notified, fetches D31, runs BX13-put.
	fmt.Println("[steps 9-11] Patient is notified, fetches the new D31, and runs BX13-put into D1")
	if err := sc.Doctor.WaitFinal(ctx, props[0].ShareID, props[0].Seq); err != nil {
		log.Fatal(err)
	}

	d1, _ := sc.Patient.Source("D1")
	show("Patient D1 (after steps 7-11)", d1)

	// The ledger recorded everything.
	auditor := medshare.NewAuditor(sc.Network.Node(0))
	recs, err := auditor.History("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== ledger history (%d transactions) ===\n", len(recs))
	for _, r := range recs {
		status := "ok"
		if !r.OK {
			status = "DENIED"
		}
		fmt.Printf("  block %3d  %-16s %-10s seq %d  cols %v  [%s]\n",
			r.Height, r.Fn, r.ShareID, r.Seq, r.Cols, status)
	}
}
