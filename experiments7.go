package medshare

import (
	"context"
	"time"
)

// ---------------------------------------------------------------------
// E15 — convergence under faults. The chaos suite (NewChaosScenario) as
// an experiment: the Fig. 1 topology runs an update storm while the
// data channel drops and delays requests, survives a full three-way
// partition and a doctor crash-restart mid-cascade, and the metric is
// how long the network needs to bring every replica back to the
// on-chain Merkle root once the last fault lifts. The paper argues the
// chain is the recovery anchor (Section V); E15 measures that anchor
// doing its job with no manual resync — retry backoff, endpoint
// quarantine, and the background repair loop alone.

// E15Result reports one chaos run at a given request-loss probability.
type E15Result struct {
	// DropRate is the request-loss probability while faults are active
	// (sweep config).
	DropRate float64
	// Updates is the number of finalized updates driven through the
	// faulty network (deterministic per seed — a config echo).
	Updates int
	// ConvergeTime is the heal-to-converged latency: the time from the
	// last fault being lifted until every replica of both shares hashes
	// to the on-chain payload root.
	ConvergeTime time.Duration
	// RequestsLost and RequestsBlocked count what the fabric did to the
	// data channel (lost = sampled loss, blocked = partition/blackhole).
	RequestsLost    uint64
	RequestsBlocked uint64
	// RPCRetries, ResyncsFired, and RepairHeals aggregate the recovery
	// machinery's work across all three peers.
	RPCRetries   uint64
	ResyncsFired uint64
	RepairHeals  uint64
}

// RunE15Chaos runs the chaos suite once at the given drop rate.
func RunE15Chaos(ctx context.Context, dropRate float64, seed int64) (E15Result, error) {
	res := E15Result{DropRate: dropRate}
	sc, err := NewChaosScenario(ctx, ChaosConfig{Seed: seed, DropRate: dropRate})
	if err != nil {
		return res, err
	}
	defer sc.Network.Stop()
	report, err := sc.Run(ctx)
	if err != nil {
		return res, err
	}
	res.Updates = report.Updates
	res.ConvergeTime = report.ConvergeAfterHeal
	res.RequestsLost = report.Counters.RequestsLost + report.Counters.RequestsHung
	res.RequestsBlocked = report.Counters.Blocked
	for _, st := range report.PeerStats {
		res.RPCRetries += st.RPCRetries
		res.ResyncsFired += st.ResyncsTriggered
		res.RepairHeals += st.RepairHeals
	}
	return res, nil
}
