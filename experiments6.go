package medshare

import (
	"fmt"
	"time"

	"medshare/internal/bx"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// ---------------------------------------------------------------------
// E14 — delta-first lens pipeline on the transient builder. Two claims:
//
//   - the whole-view lens paths (get, put) — O(n) by nature, paid once
//     per proposal — rebuild the output table through pmap's transient
//     builder (slab-allocated nodes, in-place spine construction)
//     instead of one heap allocation per row entry and tree node, which
//     claws back the documented ~1.8x bulk-rebuild regression of the
//     persistent-storage switch;
//   - JoinLens has a native PutDelta (per-changed-row re-join against a
//     prefix-scan index on the reference), so the last O(table)
//     consumer on the update path is gone: a one-row delta through a
//     join costs the same order as through a plain projection,
//     independent of table size.

// E14Result reports the rebuild and join-delta costs at one table size.
type E14Result struct {
	Rows int
	// GetRebuild is the whole-view projection get (D31, O(n) rebuild).
	GetRebuild time.Duration
	// PutRebuild is the whole-view projection put (D31, O(n) rebuild).
	PutRebuild time.Duration
	// JoinGet is the whole-view join materialization (prescriptions ⋈
	// formulary: O(n) rebuild plus an O(log m) reference probe per row).
	JoinGet time.Duration
	// JoinDeltaPut is a one-row view edit embedded through the join
	// lens's native PutDelta (steady state, reference index warm).
	JoinDeltaPut time.Duration
	// ProjectDeltaPut is the same one-row edit through the projection
	// lens — the acceptance yardstick: the join delta must stay within a
	// small constant of it at every size.
	ProjectDeltaPut time.Duration
}

// RunE14BuilderRebuild measures the rebuild paths and the join delta at
// the given table size.
func RunE14BuilderRebuild(rows int, seed int64) (E14Result, error) {
	res := E14Result{Rows: rows}
	full := workload.Generate("full", rows, seed)
	rx, err := full.Project("RX", workload.PrescriptionCols, nil)
	if err != nil {
		return res, err
	}
	projLens := LensD31()
	joinLens := bx.Join("RXF", workload.Formulary("formulary", seed))

	reps := 16
	if rows >= 100000 {
		reps = 4
	}
	const blocks = 5
	bestOf := func(stage func() error) (time.Duration, error) {
		best := time.Duration(1<<63 - 1)
		for b := 0; b < blocks; b++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				if err := stage(); err != nil {
					return 0, err
				}
			}
			if d := time.Since(start) / time.Duration(reps); d < best {
				best = d
			}
		}
		return best, nil
	}

	// Whole-view projection get and put (the O(n) rebuild paths).
	projView, err := projLens.Get(full)
	if err != nil {
		return res, err
	}
	if res.GetRebuild, err = bestOf(func() error {
		_, err := projLens.Get(full)
		return err
	}); err != nil {
		return res, err
	}
	editedProj := projView.Clone()
	projKeys := projView.RowsCanonical()
	if err := editedProj.Update(projView.KeyValues(projKeys[0]),
		map[string]reldb.Value{workload.ColDosage: reldb.S("e14")}); err != nil {
		return res, err
	}
	if res.PutRebuild, err = bestOf(func() error {
		_, err := projLens.Put(full, editedProj)
		return err
	}); err != nil {
		return res, err
	}

	// Whole-view join materialization.
	joinView, err := joinLens.Get(rx)
	if err != nil {
		return res, err
	}
	if res.JoinGet, err = bestOf(func() error {
		_, err := joinLens.Get(rx)
		return err
	}); err != nil {
		return res, err
	}

	// One-row deltas: join vs projection, steady state.
	joinKeys := joinView.RowsCanonical()
	i := 0
	oneRowDelta := func(view *reldb.Table, keys []reldb.Row, col string) (*reldb.Table, reldb.Changeset, error) {
		i++
		edited := view.Clone()
		if err := edited.Update(view.KeyValues(keys[i%len(keys)]),
			map[string]reldb.Value{col: reldb.S(fmt.Sprintf("e14-%d", i))}); err != nil {
			return nil, reldb.Changeset{}, err
		}
		cs, err := view.Diff(edited)
		return edited, cs, err
	}
	// Warm the reference index once (a live share is warm after its
	// first delta).
	if edited, cs, err := oneRowDelta(joinView, joinKeys, workload.ColDosage); err != nil {
		return res, err
	} else if _, _, err := bx.PutDelta(joinLens, rx, edited, cs); err != nil {
		return res, err
	}
	if res.JoinDeltaPut, err = bestOf(func() error {
		edited, cs, err := oneRowDelta(joinView, joinKeys, workload.ColDosage)
		if err != nil {
			return err
		}
		_, _, err = bx.PutDelta(joinLens, rx, edited, cs)
		return err
	}); err != nil {
		return res, err
	}
	if res.ProjectDeltaPut, err = bestOf(func() error {
		edited, cs, err := oneRowDelta(projView, projKeys, workload.ColDosage)
		if err != nil {
			return err
		}
		_, _, err = bx.PutDelta(projLens, full, edited, cs)
		return err
	}); err != nil {
		return res, err
	}
	return res, nil
}
