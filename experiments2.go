package medshare

import (
	"context"
	"fmt"
	"sync"
	"time"

	"medshare/internal/audit"
	"medshare/internal/bx"
	"medshare/internal/core"
	"medshare/internal/identity"
	"medshare/internal/reldb"
	"medshare/internal/workload"
)

// ---------------------------------------------------------------------
// E6 — Section IV-1 throughput: finalized updates per second as a
// function of the block interval and the batch size. The paper argues a
// 12 s Ethereum-style interval is acceptable because "nodes may choose to
// collect a lot of updates and then send requests": the sweep quantifies
// exactly that trade-off. The system runs under a scaled clock; rates are
// reported in *modeled* time (blocks consumed × configured interval), so
// a 12 s interval does not require 12 s wall-clock waits.

// E6Result reports throughput for one (interval, batch) point.
type E6Result struct {
	Consensus     string
	BlockInterval time.Duration // modeled interval
	BatchSize     int           // row updates per on-chain request
	Rounds        int           // update requests completed
	BlocksUsed    uint64
	ModeledTime   time.Duration // BlocksUsed * BlockInterval
	WallTime      time.Duration
	// RowsPerSecModeled is rows synchronized per modeled second.
	RowsPerSecModeled float64
	// UpdatesPerSecModeled is on-chain update cycles per modeled second.
	UpdatesPerSecModeled float64
}

// RunE6Throughput performs `rounds` update cycles of `batch` row edits on
// the D13&D31 share, under the given consensus and modeled block
// interval, compressed by timeScale.
func RunE6Throughput(ctx context.Context, consensus string, interval time.Duration, batch, rounds int, timeScale float64) (E6Result, error) {
	records := batch * 2
	if records < 16 {
		records = 16
	}
	sc, err := NewFig1Scenario(ctx, NetworkConfig{
		Consensus:     consensus,
		PoWDifficulty: 4,
		BlockInterval: interval,
		TimeScale:     timeScale,
	}, records, 1)
	if err != nil {
		return E6Result{}, err
	}
	defer sc.Stop()

	out := E6Result{
		Consensus:     consensus,
		BlockInterval: interval,
		BatchSize:     batch,
		Rounds:        rounds,
	}
	node := sc.Network.Node(0)
	startHeight := node.Store().Height()
	d3, err := sc.Doctor.Source("D3")
	if err != nil {
		return out, err
	}
	ups := workload.RandomUpdates(d3, []string{workload.ColDosage}, batch*rounds, 7)

	wallStart := time.Now()
	for r := 0; r < rounds; r++ {
		slice := ups[r*batch : (r+1)*batch]
		err := sc.Doctor.UpdateSource("D3", func(tbl *reldb.Table) error {
			for _, u := range slice {
				if err := u.Apply(tbl); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return out, err
		}
		props, err := sc.Doctor.SyncShares(ctx, "D3")
		if err != nil {
			return out, fmt.Errorf("E6 round %d: %w", r, err)
		}
		for _, pr := range props {
			if err := sc.Doctor.WaitFinal(ctx, pr.ShareID, pr.Seq); err != nil {
				return out, err
			}
		}
	}
	out.WallTime = time.Since(wallStart)
	out.BlocksUsed = node.Store().Height() - startHeight
	if out.BlocksUsed == 0 {
		out.BlocksUsed = 1
	}
	out.ModeledTime = time.Duration(out.BlocksUsed) * interval
	modeledSec := out.ModeledTime.Seconds()
	out.RowsPerSecModeled = float64(batch*rounds) / modeledSec
	out.UpdatesPerSecModeled = float64(rounds) / modeledSec
	return out, nil
}

// ---------------------------------------------------------------------
// E7 — conflict rule: cost of the one-update-at-a-time share gate. m
// updaters hammer one m+1-peer share (fully serialized by the pending
// gate and the one-tx-per-share-per-block rule) versus m independent
// two-peer shares (parallel).

// E7Result compares contended and independent makespans.
type E7Result struct {
	Updaters            int
	ContendedMakespan   time.Duration
	IndependentMakespan time.Duration
	SerializationFactor float64
}

// RunE7ConflictRule measures both configurations with m updating peers.
func RunE7ConflictRule(ctx context.Context, m int) (E7Result, error) {
	out := E7Result{Updaters: m}

	contended, err := runE7Contended(ctx, m)
	if err != nil {
		return out, fmt.Errorf("E7 contended: %w", err)
	}
	out.ContendedMakespan = contended

	independent, err := runE7Independent(ctx, m)
	if err != nil {
		return out, fmt.Errorf("E7 independent: %w", err)
	}
	out.IndependentMakespan = independent
	if independent > 0 {
		out.SerializationFactor = float64(contended) / float64(independent)
	}
	return out, nil
}

// e7Schema is a single shared column plus key.
func e7Schema(name string) reldb.Schema {
	return reldb.Schema{
		Name: name,
		Columns: []reldb.Column{
			{Name: "k", Type: reldb.KindInt},
			{Name: "v", Type: reldb.KindString},
		},
		Key: []string{"k"},
	}
}

func e7Lens(view string) bx.Lens { return bx.Project(view, []string{"k", "v"}, nil) }

// runE7Contended: one share among m+1 peers; each of the m updaters
// performs one update; the pending gate forces full serialization (every
// update additionally needs m acks).
func runE7Contended(ctx context.Context, m int) (time.Duration, error) {
	nw, err := NewNetwork(NetworkConfig{BlockInterval: 2 * time.Millisecond})
	if err != nil {
		return 0, err
	}
	defer nw.Stop()

	peers := make([]*core.Peer, m+1)
	addrs := make([]identity.Address, m+1)
	for i := range peers {
		p, err := nw.NewPeer(fmt.Sprintf("peer%d", i), 0)
		if err != nil {
			return 0, err
		}
		peers[i] = p
		addrs[i] = p.Address()
		tbl := reldb.MustNewTable(e7Schema("T"))
		tbl.MustInsert(reldb.Row{reldb.I(1), reldb.S("v0")})
		p.DB().PutTable(tbl)
	}
	perm := map[string][]identity.Address{"v": addrs}
	err = peers[0].RegisterShare(ctx, core.RegisterShareArgs{
		ID: "S", SourceTable: "T", Lens: e7Lens("S0"), ViewName: "S0",
		Peers: addrs, WritePerm: perm,
	})
	if err != nil {
		return 0, err
	}
	for i := 1; i <= m; i++ {
		if err := peers[i].AttachShare("S", "T", e7Lens(fmt.Sprintf("S%d", i)), fmt.Sprintf("S%d", i)); err != nil {
			return 0, err
		}
	}

	start := time.Now()
	// Each updater proposes one update; contention means proposals bounce
	// off the pending gate until their turn, so retry with backoff.
	var wg sync.WaitGroup
	errs := make(chan error, m)
	for i := 1; i <= m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := peers[i]
			if err := p.UpdateSource("T", func(tbl *reldb.Table) error {
				return tbl.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"v": reldb.S(fmt.Sprintf("from-%d", i))})
			}); err != nil {
				errs <- err
				return
			}
			backoff := 5 * time.Millisecond
			for {
				res, err := p.ProposeUpdate(ctx, "S")
				if err == nil {
					if err := p.WaitFinal(ctx, "S", res.Seq); err != nil {
						errs <- err
					}
					return
				}
				if err == core.ErrNoChanges {
					// A peer's edit was overwritten by an incoming update
					// before it could propose: re-apply and retry.
					if err := p.UpdateSource("T", func(tbl *reldb.Table) error {
						return tbl.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"v": reldb.S(fmt.Sprintf("retry-%d-%d", i, time.Now().UnixNano()))})
					}); err != nil {
						errs <- err
						return
					}
					continue
				}
				// Denied while another update is pending: back off so the
				// retry storm cannot starve the acknowledgements that
				// unblock the share (each retry consumes this share's one
				// tx slot per block).
				select {
				case <-ctx.Done():
					errs <- ctx.Err()
					return
				case <-time.After(backoff):
				}
				if backoff < 50*time.Millisecond {
					backoff *= 2
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// runE7Independent: m disjoint 2-peer shares updated concurrently.
func runE7Independent(ctx context.Context, m int) (time.Duration, error) {
	nw, err := NewNetwork(NetworkConfig{BlockInterval: 2 * time.Millisecond})
	if err != nil {
		return 0, err
	}
	defer nw.Stop()

	type pair struct{ a, b *core.Peer }
	pairs := make([]pair, m)
	for i := 0; i < m; i++ {
		a, err := nw.NewPeer(fmt.Sprintf("a%d", i), 0)
		if err != nil {
			return 0, err
		}
		b, err := nw.NewPeer(fmt.Sprintf("b%d", i), 0)
		if err != nil {
			return 0, err
		}
		for _, p := range []*core.Peer{a, b} {
			tbl := reldb.MustNewTable(e7Schema("T"))
			tbl.MustInsert(reldb.Row{reldb.I(1), reldb.S("v0")})
			p.DB().PutTable(tbl)
		}
		id := fmt.Sprintf("S%d", i)
		err = a.RegisterShare(ctx, core.RegisterShareArgs{
			ID: id, SourceTable: "T", Lens: e7Lens(id + "a"), ViewName: id + "a",
			Peers:     []identity.Address{a.Address(), b.Address()},
			WritePerm: map[string][]identity.Address{"v": {a.Address(), b.Address()}},
		})
		if err != nil {
			return 0, err
		}
		if err := b.AttachShare(id, "T", e7Lens(id+"b"), id+"b"); err != nil {
			return 0, err
		}
		pairs[i] = pair{a, b}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, m)
	for i, pr := range pairs {
		wg.Add(1)
		go func(i int, a *core.Peer) {
			defer wg.Done()
			if err := a.UpdateSource("T", func(tbl *reldb.Table) error {
				return tbl.Update(reldb.Row{reldb.I(1)}, map[string]reldb.Value{"v": reldb.S(fmt.Sprintf("u%d", i))})
			}); err != nil {
				errs <- err
				return
			}
			res, err := a.ProposeUpdate(ctx, fmt.Sprintf("S%d", i))
			if err != nil {
				errs <- err
				return
			}
			if err := a.WaitFinal(ctx, fmt.Sprintf("S%d", i), res.Seq); err != nil {
				errs <- err
			}
		}(i, pr.a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// ---------------------------------------------------------------------
// E8 — baseline comparison (Section V): fine-grained views versus
// MedRec-style full-record sharing. The paper's motivation is privacy
// (peers see only what concerns them) and interference (unrelated
// attributes mislead); the experiment quantifies bytes exposed, unrelated
// attributes visible, and bytes transferred per single-field update.

// E8Result compares one stakeholder's exposure under both schemes.
type E8Result struct {
	Records int
	Peer    string
	// Exposure in bytes of canonical payload visible to the peer.
	FullRecordBytes  float64
	FineGrainedBytes float64
	ExposureRatio    float64
	// Attributes visible vs needed.
	AttrsFull      int
	AttrsNeeded    int
	AttrsUnrelated int
	// Transfer bytes for one single-field update.
	TransferFullRecord  float64
	TransferFineGrained float64
	TransferChangeset   float64
}

// RunE8Baseline computes the comparison for the patient and the
// researcher at the given record count.
func RunE8Baseline(records int, seed int64) ([]E8Result, error) {
	full := workload.Generate("full", records, seed)
	fullBytes := float64(len(full.AppendCanonical(nil)))

	mk := func(peer string, lens bx.Lens, src *reldb.Table, needed int) (E8Result, error) {
		view, err := lens.Get(src)
		if err != nil {
			return E8Result{}, err
		}
		viewBytes := float64(len(view.AppendCanonical(nil)))

		// A single-field update payload under each scheme: the whole base
		// table (full-record), the whole view (fine-grained, our wire
		// format), or the row-level changeset (fine-grained incremental).
		edited := view.Clone()
		rows := edited.RowsCanonical()
		if len(rows) > 0 {
			cols := edited.Schema()
			for _, c := range cols.Columns {
				if !cols.IsKeyColumn(c.Name) && c.Type == reldb.KindString {
					if err := edited.Update(edited.KeyValues(rows[0]),
						map[string]reldb.Value{c.Name: reldb.S("edited")}); err != nil {
						return E8Result{}, err
					}
					break
				}
			}
		}
		cs, err := view.Diff(edited)
		if err != nil {
			return E8Result{}, err
		}
		csRaw, err := reldb.MarshalChangeset(cs)
		if err != nil {
			return E8Result{}, err
		}
		viewRaw, err := reldb.MarshalTable(edited)
		if err != nil {
			return E8Result{}, err
		}
		fullRaw, err := reldb.MarshalTable(full)
		if err != nil {
			return E8Result{}, err
		}
		attrsFull := len(full.Schema().Columns)
		return E8Result{
			Records:             records,
			Peer:                peer,
			FullRecordBytes:     fullBytes,
			FineGrainedBytes:    viewBytes,
			ExposureRatio:       fullBytes / viewBytes,
			AttrsFull:           attrsFull,
			AttrsNeeded:         needed,
			AttrsUnrelated:      attrsFull - needed,
			TransferFullRecord:  float64(len(fullRaw)),
			TransferFineGrained: float64(len(viewRaw)),
			TransferChangeset:   float64(len(csRaw)),
		}, nil
	}

	var out []E8Result
	// Patient's concern: the D13 slice (4 of 7 attributes).
	r, err := mk("Patient", bx.Project("D13", workload.ShareD13Cols, nil), full, len(workload.ShareD13Cols))
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	// Researcher's concern: the D23 slice (2 of 7 attributes).
	r, err = mk("Researcher", bx.Project("D23", workload.ShareD23Cols, []string{workload.ColMedication}), full, len(workload.ShareD23Cols))
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	return out, nil
}

// ---------------------------------------------------------------------
// E9 — BX microbenchmarks: get/put cost vs table size and lens
// composition depth (plus the law checks the paper imports from the BX
// literature, §II-B).

// E9Result reports lens costs at one size/depth point.
type E9Result struct {
	Rows  int
	Depth int
	Get   time.Duration
	Put   time.Duration
}

// RunE9BX measures get and put at the given table size and composition
// depth (depth 1 is a plain projection; each extra level wraps a
// selection or rename around it).
func RunE9BX(rows, depth int, seed int64) (E9Result, error) {
	full := workload.Generate("full", rows, seed)
	lens := buildE9Lens(depth)

	// Best-of-blocks estimator (like E12/E14): a GC pause or scheduler
	// preemption inflates one block, not the minimum.
	const reps, blocks = 8, 5
	bestOf := func(stage func() error) (time.Duration, error) {
		best := time.Duration(1<<63 - 1)
		for b := 0; b < blocks; b++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				if err := stage(); err != nil {
					return 0, err
				}
			}
			if d := time.Since(start) / reps; d < best {
				best = d
			}
		}
		return best, nil
	}

	view, err := lens.Get(full)
	if err != nil {
		return E9Result{}, err
	}
	getTime, err := bestOf(func() error {
		_, err := lens.Get(full)
		return err
	})
	if err != nil {
		return E9Result{}, err
	}

	edited := view.Clone()
	rowsC := edited.RowsCanonical()
	if len(rowsC) > 0 {
		if err := edited.Update(edited.KeyValues(rowsC[0]),
			map[string]reldb.Value{workload.ColDosage: reldb.S("e9")}); err != nil {
			return E9Result{}, err
		}
	}
	putTime, err := bestOf(func() error {
		_, err := lens.Put(full, edited)
		return err
	})
	if err != nil {
		return E9Result{}, err
	}
	return E9Result{Rows: rows, Depth: depth, Get: getTime, Put: putTime}, nil
}

// buildE9Lens builds a lens of the requested composition depth over the
// full-record schema, always ending in the D13-style projection.
func buildE9Lens(depth int) bx.Lens {
	base := bx.Project("e9", workload.ShareD13Cols, nil)
	if depth <= 1 {
		return base
	}
	lenses := []bx.Lens{bx.Select("sel", reldb.True())}
	for i := 2; i < depth; i++ {
		lenses = append(lenses, bx.Select(fmt.Sprintf("sel%d", i), reldb.True()))
	}
	lenses = append(lenses, base)
	return bx.Compose(lenses[0], lenses[1:]...)
}

// ---------------------------------------------------------------------
// E10 — audit: ledger history reconstruction and tamper checking vs
// chain length.

// E10Result reports audit costs for one chain length.
type E10Result struct {
	Updates      int
	Blocks       uint64
	HistoryTime  time.Duration
	IntegrityOK  time.Duration
	HistoryCount int
}

// RunE10Audit drives k finalized updates through a scenario, then
// measures history reconstruction and integrity verification.
func RunE10Audit(ctx context.Context, k int) (E10Result, error) {
	sc, err := NewFig1Scenario(ctx, NetworkConfig{BlockInterval: 2 * time.Millisecond}, 8, 1)
	if err != nil {
		return E10Result{}, err
	}
	defer sc.Stop()

	d3, err := sc.Doctor.Source("D3")
	if err != nil {
		return E10Result{}, err
	}
	ups := workload.RandomUpdates(d3, []string{workload.ColDosage}, k, 3)
	for i, u := range ups {
		if err := sc.Doctor.UpdateSource("D3", u.Apply); err != nil {
			return E10Result{}, err
		}
		if err := syncAndWait(ctx, sc.Doctor, "D3"); err != nil {
			return E10Result{}, fmt.Errorf("E10 update %d: %w", i, err)
		}
	}

	node := sc.Network.Node(0)
	auditor := audit.New(node.Store(), node.Registry())
	out := E10Result{Updates: k, Blocks: node.Store().Height()}

	// Both measurements are read-only over the sealed chain: take the
	// best of three passes so one noisy-neighbor window on shared
	// hardware does not inflate the gate metric.
	var recs []audit.Record
	out.HistoryTime = time.Duration(1<<63 - 1)
	for pass := 0; pass < 3; pass++ {
		start := time.Now()
		recs, err = auditor.History(ShareIDD13)
		if err != nil {
			return out, err
		}
		if d := time.Since(start); d < out.HistoryTime {
			out.HistoryTime = d
		}
	}
	out.HistoryCount = len(recs)

	out.IntegrityOK = time.Duration(1<<63 - 1)
	for pass := 0; pass < 3; pass++ {
		start := time.Now()
		if err := auditor.VerifyIntegrity(); err != nil {
			return out, err
		}
		if d := time.Since(start); d < out.IntegrityOK {
			out.IntegrityOK = d
		}
	}
	return out, nil
}
